package sim

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/auction"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/wal"
)

// clusterRejoinWait is how long the in-test router parks a down node's
// requests awaiting its rejoin. Restarting a node is milliseconds of
// work; the window is generous so a parked request always outlives the
// recovery instead of burning its device's retry budget — the property
// that keeps kill/restart runs equal to the uninterrupted baseline.
const clusterRejoinWait = 60 * time.Second

// simNode is one cluster member: a single-shard ShardedServer on its
// own loopback listener with its own WAL directory. The node's mu
// guards the incarnation swap on restart; down is read by the handler
// wrapper so a "dead" node aborts connections exactly like a killed
// process until the replacement is up.
type simNode struct {
	idx     int
	members []int
	walDir  string

	mu       sync.Mutex
	pool     *shard.Pool
	ts       *transport.ShardedServer
	log      *wal.Log
	srv      *http.Server
	ln       net.Listener
	down     bool
	restarts int

	restartCh chan struct{}
}

func (nd *simNode) isDown() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.down
}

// clusterBackend serves the replay from N simNodes behind a
// cluster.Router, and implements the node kill/restart machinery: the
// WAL hook of a dying node seals its log and signals its restart
// goroutine, which tears the incarnation down completely (listener
// included), rebuilds it from the node's own WAL, and tells the router
// to Rejoin it at the replacement's address.
type clusterBackend struct {
	env    *replayEnv
	nodes  []*simNode
	router *cluster.Router

	// elastic marks a run with scheduled membership changes: placement
	// rides the router's consistent-hash ring instead of the fixed
	// shard.Route partition, and each node mints impression ids from its
	// own namespace so client state can migrate without id collisions.
	elastic    bool
	migrations map[int][]MigrationStep

	routerSrv *http.Server
	routerURL string
	serveErr  chan error
	stopOnce  sync.Once
	done      chan struct{}
	doneOnce  sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu  sync.Mutex
	err error // first restart failure
}

func newClusterBackend(env *replayEnv) (*clusterBackend, error) {
	o := env.o
	b := &clusterBackend{env: env, serveErr: make(chan error, 1), done: make(chan struct{})}
	nodes := o.Nodes
	b.elastic = len(o.Migrations) > 0
	if b.elastic {
		b.migrations = make(map[int][]MigrationStep)
		for _, st := range o.Migrations {
			b.migrations[st.Period] = append(b.migrations[st.Period], st)
		}
	}

	// Partition clients onto nodes. The fixed-size tier uses the same
	// stable function the single-process server partitions them onto
	// shards, so a cluster of N and a single process at shards=N sell to
	// identical client subsets — the bit-for-bit comparability the
	// differential tier asserts. Elastic runs partition with the same
	// consistent-hash ring the router will place with, so boot ownership
	// matches placement exactly (and the partition-invariance contract
	// keeps the accounting equal to any other split).
	place := func(id int) int { return shard.Route(id, nodes) }
	if b.elastic {
		ring := cluster.NewRing(nodes, 0)
		place = ring.Place
	}
	members := make([][]int, nodes)
	for _, id := range env.ids {
		members[place(id)] = append(members[place(id)], id)
	}
	for i := 0; i < nodes; i++ {
		nd := &simNode{idx: i, members: members[i], restartCh: make(chan struct{}, 1)}
		if o.WALDir != "" {
			nd.walDir = filepath.Join(o.WALDir, fmt.Sprintf("node%d", i))
			if err := os.MkdirAll(nd.walDir, 0o755); err != nil {
				b.close()
				return nil, fmt.Errorf("sim: node %d wal dir: %w", i, err)
			}
		}
		if err := b.buildNode(nd); err != nil {
			b.close()
			return nil, err
		}
		b.nodes = append(b.nodes, nd)
	}

	urls := make([]string, nodes)
	for i, nd := range b.nodes {
		urls[i] = "http://" + nd.ln.Addr().String()
	}
	ropts := []cluster.Option{
		cluster.WithRejoinWait(clusterRejoinWait),
		cluster.WithHTTPClient(&http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        env.workers * 2,
				MaxIdleConnsPerHost: env.workers * 2,
			},
			Timeout: 10 * time.Second,
		}),
	}
	if !b.elastic {
		// Fixed-size runs freeze placement to the shard partition; an
		// elastic run keeps the router's own ring so membership can move.
		ropts = append(ropts, cluster.WithPlacement(place))
	}
	router, err := cluster.New(cluster.Membership{Nodes: urls}, ropts...)
	if err != nil {
		b.close()
		return nil, err
	}
	b.router = router

	// Node restart goroutines: one per node, so two nodes killed
	// back-to-back recover independently (double-kill tolerance).
	if o.Crashes != nil {
		for _, nd := range b.nodes {
			b.wg.Add(1)
			go b.restartLoop(nd)
		}
	}

	// The router is the only address devices and the coordinator know.
	// The fault plan's middleware wraps it — faults are injected on the
	// device↔router leg, mirroring the single-process topology where
	// the plan fronts the whole server — and its partition routing maps
	// a client to its node.
	handler := http.Handler(router.Handler())
	if env.plan != nil {
		handler = env.plan.Middleware(handler, place)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.close()
		return nil, fmt.Errorf("sim: router listener: %w", err)
	}
	b.routerSrv = &http.Server{Handler: handler}
	b.routerURL = "http://" + ln.Addr().String()
	go func() { b.serveErr <- b.routerSrv.Serve(ln) }()
	return b, nil
}

// buildNode constructs one serving incarnation of a node — pool over
// its member clients, transport server, WAL recovery — and starts its
// listener. Called at boot and by the restart loop after a kill.
func (b *clusterBackend) buildNode(nd *simNode) error {
	env, o := b.env, b.env.o
	pool, err := env.makePool(1, nd.members)
	if err != nil {
		return err
	}
	if b.elastic {
		// Disjoint impression-id namespaces: each node mints from its own
		// 2^40 block, so state handed to another node can never collide
		// with ids the adopter minted itself. Seeded before WAL recovery,
		// so replayed sales mint exactly the ids the live run did.
		for i := 0; i < pool.Shards(); i++ {
			pool.Shard(i).Exchange().SeedImpressionIDs(auction.ImpressionID(nd.idx+1) << 40)
		}
	}
	ts := transport.NewShardedServer(pool)
	ts.SetNodeID(fmt.Sprintf("node%d", nd.idx))
	if err := setTenants(ts, o.Tenants); err != nil {
		return err
	}
	var l *wal.Log
	if nd.walDir != "" {
		var hook func(wal.Record)
		if o.Crashes != nil {
			hook = b.killHook(nd)
		}
		l, err = wal.Open(nd.walDir, wal.Options{NoSync: !o.Fsync, Hook: hook})
		if err != nil {
			return fmt.Errorf("sim: node %d wal: %w", nd.idx, err)
		}
		ts.AttachWAL(l, o.SnapshotEvery)
		if _, err := ts.Recover(); err != nil {
			l.Close()
			return fmt.Errorf("sim: node %d recovery: %w", nd.idx, err)
		}
	}
	// While the node is down its replacement is not serving yet; abort
	// any connection that still reaches the old incarnation, exactly
	// like a killed process would.
	inner := ts.Handler()
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if nd.isDown() {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if l != nil {
			l.Close()
		}
		return fmt.Errorf("sim: node %d listener: %w", nd.idx, err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	nd.mu.Lock()
	nd.pool, nd.ts, nd.log, nd.srv, nd.ln = pool, ts, l, srv, ln
	nd.mu.Unlock()
	return nil
}

// killHook returns the WAL hook that turns a fired crash point into a
// node death: mark the node down, seal its log so nothing further
// becomes durable or acked, signal the restart loop, and abort the
// in-flight request — its client never learns the outcome and must
// retry against the recovered node.
func (b *clusterBackend) killHook(nd *simNode) func(wal.Record) {
	crashes := b.env.o.Crashes
	return func(rec wal.Record) {
		if !crashes.ObserveNode(nd.idx, rec.Op) {
			return
		}
		nd.mu.Lock()
		if !nd.down {
			nd.down = true
			nd.log.Seal()
			nd.restartCh <- struct{}{}
		}
		nd.mu.Unlock()
		panic(http.ErrAbortHandler)
	}
}

// restartLoop recovers a node after each kill. The router learns of
// the death organically — consecutive failures open its circuit and
// park the node's clients — and is told to Rejoin once the replacement
// is serving, at its new address.
func (b *clusterBackend) restartLoop(nd *simNode) {
	defer b.wg.Done()
	for {
		select {
		case <-nd.restartCh:
		case <-b.done:
			return
		}
		nd.mu.Lock()
		oldSrv, oldLog := nd.srv, nd.log
		nd.mu.Unlock()
		// Kill the incarnation completely: Close aborts in-flight
		// requests and the listener, so the router sees connection
		// failures exactly as if the process died. Then quiesce the
		// sealed log — Close waits out an append already past the seal
		// check, so the replacement reads a complete tail (such a
		// record was acked and must be replayed, not truncated).
		oldSrv.Close()
		if oldLog != nil {
			_ = oldLog.Close()
		}
		err := b.buildNode(nd)
		nd.mu.Lock()
		if err != nil {
			b.setErr(err)
		} else {
			nd.restarts++
		}
		nd.down = false
		newURL := "http://" + nd.ln.Addr().String()
		nd.mu.Unlock()
		b.router.Rejoin(nd.idx, newURL)
	}
}

// migrate fires the membership steps scheduled for this period (the
// migrator hook driveDevices calls concurrently with slot replay). A
// grow step builds a brand-new empty node and joins it — the router
// hands it its ring share live; a shrink step drains the member onto
// the survivors and then removes it. The drained node's process stays
// up for the rest of the run: its ledger history is part of the final
// accounting, which finish() sums directly from every node ever built.
func (b *clusterBackend) migrate(period int) error {
	for _, st := range b.migrations[period] {
		if st.AddNode {
			if err := b.addNode(); err != nil {
				return err
			}
			continue
		}
		if _, err := b.router.Drain(st.DrainNode); err != nil {
			return err
		}
		if err := b.router.Remove(st.DrainNode); err != nil {
			return err
		}
	}
	return nil
}

// addNode builds one fresh member — empty pool, own WAL directory, own
// impression-id namespace — and joins it to the live cluster.
func (b *clusterBackend) addNode() error {
	o := b.env.o
	nd := &simNode{idx: len(b.nodes), restartCh: make(chan struct{}, 1)}
	if o.WALDir != "" {
		nd.walDir = filepath.Join(o.WALDir, fmt.Sprintf("node%d", nd.idx))
		if err := os.MkdirAll(nd.walDir, 0o755); err != nil {
			return fmt.Errorf("sim: node %d wal dir: %w", nd.idx, err)
		}
	}
	if err := b.buildNode(nd); err != nil {
		return err
	}
	b.nodes = append(b.nodes, nd)
	if o.Crashes != nil {
		b.wg.Add(1)
		go b.restartLoop(nd)
	}
	id, _, err := b.router.AddNode("http://" + nd.ln.Addr().String())
	if err != nil {
		return err
	}
	if id != nd.idx {
		return fmt.Errorf("sim: router assigned member id %d to node %d", id, nd.idx)
	}
	return nil
}

func (b *clusterBackend) setErr(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *clusterBackend) url() string { return b.routerURL }

// registry surfaces the router's cluster-level metrics as Result.Obs;
// per-node serving metrics live on each node's own registry.
func (b *clusterBackend) registry() *obs.Registry { return b.router.Registry() }

func (b *clusterBackend) stopServe() {
	b.stopOnce.Do(func() {
		if b.routerSrv != nil {
			_ = b.routerSrv.Close()
			<-b.serveErr
		}
	})
}

func (b *clusterBackend) finish(res *Result) error {
	b.stopServe()
	b.doneOnce.Do(func() { close(b.done) })
	b.wg.Wait() // no restart in flight: every node's state is final
	b.mu.Lock()
	rerr := b.err
	b.mu.Unlock()
	if rerr != nil {
		return fmt.Errorf("sim: node restart: %w", rerr)
	}
	span := b.env.span
	res.CampaignBilled = make(map[auction.CampaignID]float64, b.env.cfg.Demand.Campaigns)
	if len(b.env.o.Tenants) > 0 {
		res.TenantLedgers = make(map[string]auction.Ledger, len(b.env.o.Tenants))
	}
	for _, nd := range b.nodes {
		nd.mu.Lock()
		pool := nd.pool
		res.Restarts += nd.restarts
		nd.mu.Unlock()
		for i := 0; i < pool.Shards(); i++ {
			pool.Shard(i).Exchange().SweepExpired(span + simclock.Week)
		}
		l := pool.Ledger()
		res.Ledger.Sold += l.Sold
		res.Ledger.BilledUSD += l.BilledUSD
		res.Ledger.Billed += l.Billed
		res.Ledger.FreeUSD += l.FreeUSD
		res.Ledger.FreeShows += l.FreeShows
		res.Ledger.Violations += l.Violations
		res.Ledger.ViolatedUSD += l.ViolatedUSD
		res.Ledger.PotentialUSD += l.PotentialUSD
		for i := 0; i < b.env.cfg.Demand.Campaigns; i++ {
			id := auction.CampaignID(i)
			for s := 0; s < pool.Shards(); s++ {
				if billed, _, err := pool.Shard(s).Exchange().CampaignSpend(id); err == nil {
					res.CampaignBilled[id] += billed
				}
			}
		}
		for _, tc := range b.env.o.Tenants {
			tl := res.TenantLedgers[tc.ID]
			for s := 0; s < pool.Shards(); s++ {
				addLedgers(&tl, pool.Shard(s).Exchange().LedgerOf(tc.ID))
			}
			res.TenantLedgers[tc.ID] = tl
		}
	}
	return nil
}

func (b *clusterBackend) close() {
	b.stopServe()
	b.doneOnce.Do(func() { close(b.done) })
	b.wg.Wait()
	b.closeOnce.Do(func() {
		for _, nd := range b.nodes {
			nd.mu.Lock()
			srv, l := nd.srv, nd.log
			nd.mu.Unlock()
			if srv != nil {
				_ = srv.Close()
			}
			if l != nil {
				_ = l.Close()
			}
		}
		if b.router != nil {
			b.router.Close()
		}
	})
}
