package sim

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
)

// chaosPlan is the seeded chaos schedule for the `make chaos` tier:
// 5% drops, 5% synthesized 5xx, 3% lost replies (side effects applied,
// the dedup window must absorb the retry), 2% resets, 2% truncated
// bodies — and, when asked, one timed blackout of shard 0 during the
// second selling day. MaxFaults=2 against the clients' 4 attempts
// guarantees every request outside the partition eventually lands, so
// the run always terminates.
func chaosPlan(seed int64, withPartition bool) *faults.Plan {
	p := &faults.Plan{
		Seed: seed,
		Default: faults.Rule{
			Drop:      0.05,
			ServerErr: 0.05,
			Delay:     0.03,
			Reset:     0.02,
			Truncate:  0.02,
			MaxFaults: 2,
		},
	}
	if withPartition {
		// Midday of the second day: the diurnal trace is busy, so the
		// blackout lands on live slot traffic, not just bundle fetches.
		p.Partitions = []faults.Partition{{
			Shard: 0,
			From:  simclock.Day + 10*simclock.Hour,
			To:    simclock.Day + 14*simclock.Hour,
		}}
	}
	return p
}

// TestChaosConservation is the chaos tier's core acceptance: under
// drops, 5xx, lost replies and a timed shard partition, at 1 shard and
// at 4, the money conserves exactly — billed + violations == sold (no
// impression vanishes), no display is ever billed twice (FreeShows
// would count it), and campaign spend equals ledger revenue.
func TestChaosConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay")
	}
	cfg := transportConfig()
	for _, shards := range []int{1, 4} {
		plan := chaosPlan(1234, true)
		res, err := RunTransportChaos(cfg, shards, 4, plan)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		l := res.Ledger
		if l.Sold == 0 || l.Billed == 0 {
			t.Fatalf("shards=%d: inert chaos run: %+v", shards, l)
		}
		if plan.Injected(faults.Drop) == 0 || plan.Injected(faults.ServerErr) == 0 {
			t.Fatalf("shards=%d: chaos did not fire: drops=%d 5xx=%d",
				shards, plan.Injected(faults.Drop), plan.Injected(faults.ServerErr))
		}
		if res.Net.Retries == 0 {
			t.Fatalf("shards=%d: no retries under chaos: %+v", shards, res.Net)
		}
		// Conservation: every sold impression is billed or violated.
		if l.Billed+l.Violations != l.Sold {
			t.Fatalf("shards=%d: conservation broken: billed %d + violations %d != sold %d",
				shards, l.Billed, l.Violations, l.Sold)
		}
		// No double billing: FixedReplicas=1 means any duplicate display
		// (a replayed report that executed twice) would surface as a free
		// show.
		if l.FreeShows != 0 || l.FreeUSD != 0 {
			t.Fatalf("shards=%d: duplicate displays under retries: %d shows, %v USD",
				shards, l.FreeShows, l.FreeUSD)
		}
		// Campaign spend must equal ledger revenue.
		var spend float64
		for _, b := range res.CampaignBilled {
			spend += b
		}
		if math.Abs(spend-l.BilledUSD) > 1e-6*(1+math.Abs(l.BilledUSD)) {
			t.Fatalf("shards=%d: campaign spend %v != ledger revenue %v", shards, spend, l.BilledUSD)
		}
		// The robustness cost is visible: retries burned energy.
		if res.RetryEnergyJ <= 0 {
			t.Fatalf("shards=%d: retries cost no energy: %+v", shards, res.Net)
		}
	}
}

// TestChaosDeterminism pins reproducibility: two runs under the same
// seed must agree byte-for-byte on the ledger, the injected-fault
// count, the retry energy, and every transport counter, even though the
// HTTP requests race across workers.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay")
	}
	cfg := transportConfig()
	planA, planB := chaosPlan(99, true), chaosPlan(99, true)
	a, err := RunTransportChaos(cfg, 4, 8, planA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTransportChaos(cfg, 4, 8, planB)
	if err != nil {
		t.Fatal(err)
	}
	if LedgerJSON(a.Ledger) != LedgerJSON(b.Ledger) {
		t.Fatalf("chaos ledger not deterministic:\n%s\n%s", LedgerJSON(a.Ledger), LedgerJSON(b.Ledger))
	}
	if a.FaultsInjected != b.FaultsInjected {
		t.Fatalf("injected faults differ: %d vs %d", a.FaultsInjected, b.FaultsInjected)
	}
	if a.RetryEnergyJ != b.RetryEnergyJ {
		t.Fatalf("retry energy differs: %v vs %v", a.RetryEnergyJ, b.RetryEnergyJ)
	}
	if a.Net != b.Net {
		t.Fatalf("transport counters differ:\n%+v\n%+v", a.Net, b.Net)
	}
	// A different seed must actually change the fault schedule.
	c, err := RunTransportChaos(cfg, 4, 8, chaosPlan(100, true))
	if err != nil {
		t.Fatal(err)
	}
	if c.Net == a.Net && c.RetryEnergyJ == a.RetryEnergyJ {
		t.Fatal("different seeds produced identical chaos outcomes")
	}
}

// TestChaosShardCountInvariance extends PR 1's invariance contract into
// the fault domain: with a partition-free plan (fault decisions are
// pure hashes of request identity, blind to shard layout), the ledger
// and the retry energy must not depend on the shard count.
func TestChaosShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay")
	}
	cfg := transportConfig()
	r1, err := RunTransportChaos(cfg, 1, 4, chaosPlan(7, false))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunTransportChaos(cfg, 4, 4, chaosPlan(7, false))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LedgerJSON(r4.Ledger), LedgerJSON(r1.Ledger); got != want {
		t.Fatalf("chaos ledger depends on shard count:\n 1 shard: %s\n 4 shards: %s", want, got)
	}
	// Retry counts are identical, but retry *bytes* differ slightly
	// across shard counts: per-shard exchanges mint their own impression
	// IDs, so JSON bodies carry different digit widths. Allow that much.
	if math.Abs(r1.RetryEnergyJ-r4.RetryEnergyJ) > 1e-6*(1+math.Abs(r1.RetryEnergyJ)) {
		t.Fatalf("retry energy depends on shard count: %v vs %v", r1.RetryEnergyJ, r4.RetryEnergyJ)
	}
	if r1.Net != r4.Net {
		t.Fatalf("transport counters depend on shard count:\n%+v\n%+v", r1.Net, r4.Net)
	}
}

// TestChaosPartitionDegrades verifies the graceful-degradation story
// end to end: the partition forces devices into cache-only operation
// (degraded slots, deferred reports), and the fault-free baseline pays
// zero retry energy while the chaos run pays a positive delta.
func TestChaosPartitionDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay")
	}
	cfg := transportConfig()
	clean, err := RunTransport(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if clean.RetryEnergyJ != 0 || clean.Net.Retries != 0 {
		t.Fatalf("fault-free run shows chaos residue: %+v", clean.Net)
	}
	chaos, err := RunTransportChaos(cfg, 4, 4, chaosPlan(1234, true))
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Net.DegradedSlots == 0 {
		t.Fatalf("partition degraded nothing: %+v", chaos.Net)
	}
	if chaos.RetryEnergyJ <= clean.RetryEnergyJ {
		t.Fatalf("chaos energy delta not positive: %v vs %v", chaos.RetryEnergyJ, clean.RetryEnergyJ)
	}
	// Degradation costs money (house ads, lost observations) but never
	// correctness: the clean run and the chaos run both conserve.
	if chaos.Ledger.Billed+chaos.Ledger.Violations != chaos.Ledger.Sold {
		t.Fatalf("chaos conservation broken: %+v", chaos.Ledger)
	}
	if clean.Ledger.Billed+clean.Ledger.Violations != clean.Ledger.Sold {
		t.Fatalf("clean conservation broken: %+v", clean.Ledger)
	}
}
