package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// streamConfig mirrors transportConfig's order-free serving contract
// (naive mode, no rescue, untargeted demand, effectively infinite
// budgets) at a chosen population size, so monetary outcomes are
// theorems of the trace, not of request interleaving — the property the
// streaming/materialized differential rests on.
func streamConfig(users, days int) Config {
	cfg := DefaultConfig(core.ModeNaiveBulk)
	cfg.TraceCfg.Users = users
	cfg.TraceCfg.Days = days
	cfg.WarmupDays = 1
	cfg.Core.NoRescue = true
	cfg.Demand.TargetedFrac = 0
	cfg.Demand.BudgetImpressions = 1_000_000_000
	return cfg
}

// assertStreamEquivalence pins the streaming replay equal to the
// materialized replay on every axis the ledger and counters can see:
// same money, same SLA outcomes, same per-client counters, same
// campaign spend, same wire traffic.
func assertStreamEquivalence(t *testing.T, label string, mat, str *Result) {
	t.Helper()
	if mat.Ledger.Sold == 0 || mat.Ledger.Billed == 0 {
		t.Fatalf("%s: inert materialized run: %+v", label, mat.Ledger)
	}
	if got, want := LedgerJSON(str.Ledger), LedgerJSON(mat.Ledger); got != want {
		t.Fatalf("%s: ledger differs across replay paths:\n materialized: %s\n streaming:    %s", label, want, got)
	}
	if mat.Ledger.Violations != str.Ledger.Violations {
		t.Fatalf("%s: SLA violations differ: %d materialized vs %d streaming",
			label, mat.Ledger.Violations, str.Ledger.Violations)
	}
	if mat.Counters != str.Counters {
		t.Fatalf("%s: aggregate counters differ:\n materialized: %+v\n streaming:    %+v",
			label, mat.Counters, str.Counters)
	}
	if mat.SoldTotal != str.SoldTotal || mat.Periods != str.Periods {
		t.Fatalf("%s: server totals differ: sold %d/%d periods %d/%d",
			label, mat.SoldTotal, str.SoldTotal, mat.Periods, str.Periods)
	}
	if len(mat.PerClient) != len(str.PerClient) {
		t.Fatalf("%s: device count differs: %d vs %d", label, len(mat.PerClient), len(str.PerClient))
	}
	for id, mc := range mat.PerClient {
		sc, ok := str.PerClient[id]
		if !ok {
			t.Fatalf("%s: client %d missing from streaming run", label, id)
		}
		if mc != sc {
			t.Fatalf("%s: client %d counters differ:\n materialized: %+v\n streaming:    %+v", label, id, mc, sc)
		}
	}
	if len(mat.CampaignBilled) != len(str.CampaignBilled) {
		t.Fatalf("%s: campaign count differs: %d vs %d",
			label, len(mat.CampaignBilled), len(str.CampaignBilled))
	}
	for id, m := range mat.CampaignBilled {
		if s := str.CampaignBilled[id]; s != m {
			t.Fatalf("%s: campaign %d billed %v materialized vs %v streaming", label, id, m, s)
		}
	}
	// Per-device request sequences are identical, so so is the wire
	// traffic (attempt counts include retries; equality holds fault-free
	// and under the aligned chaos hash).
	if mat.Net.Attempts != str.Net.Attempts {
		t.Fatalf("%s: wire attempts differ: %d materialized vs %d streaming",
			label, mat.Net.Attempts, str.Net.Attempts)
	}
	// The streaming run must actually report its period loads.
	if len(str.StreamPeriods) == 0 {
		t.Fatalf("%s: streaming run reported no periods", label)
	}
	var ops int64
	for _, p := range str.StreamPeriods {
		ops += p.Ops
		if p.HourOfDay < 0 || p.HourOfDay > 23 {
			t.Fatalf("%s: period %d at impossible hour %d", label, p.Index, p.HourOfDay)
		}
	}
	if ops == 0 {
		t.Fatalf("%s: streaming periods saw no requests", label)
	}
}

// TestStreamEquivalenceFaultFree is the tentpole's differential
// acceptance: the streaming scheduler and the materialized period walk
// replay the same seeded trace through the same serving stack and must
// produce identical outcomes — at two population sizes and on both wire
// modes.
func TestStreamEquivalenceFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay x8")
	}
	cases := []struct {
		users, days int
		sessions    float64
	}{
		{users: 200, days: 4, sessions: 12},
		{users: 2000, days: 2, sessions: 5},
	}
	for _, tc := range cases {
		cfg := streamConfig(tc.users, tc.days)
		cfg.TraceCfg.SessionsPerDayMedian = tc.sessions
		for _, batched := range []bool{false, true} {
			label := map[bool]string{false: "sequential", true: "batched"}[batched]
			o := TransportOpts{Shards: 2, Workers: 4, Batched: batched}
			mat, err := RunTransportWith(cfg, o)
			if err != nil {
				t.Fatalf("users=%d %s materialized: %v", tc.users, label, err)
			}
			str, err := RunTransportStream(cfg, o)
			if err != nil {
				t.Fatalf("users=%d %s streaming: %v", tc.users, label, err)
			}
			assertStreamEquivalence(t, labelFor(tc.users, label), mat, str)
		}
	}
}

func labelFor(users int, wire string) string {
	return wire + " users=" + itoa(users)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestStreamEquivalenceUnderChaos replays the differential under the
// seeded chaos plan (partition-free, matching the batched tier's
// precedent — a timed blackout makes wire modes legitimately diverge,
// and the same argument applies across replay paths). Fault decisions
// are pure hashes of (seed, endpoint, idempotency key, attempt) and the
// streaming path issues the identical per-device request sequence, so
// the draws align and outcomes must still match exactly.
func TestStreamEquivalenceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay x4")
	}
	cfg := streamConfig(200, 4)
	for _, batched := range []bool{false, true} {
		label := map[bool]string{false: "chaos sequential", true: "chaos batched"}[batched]
		matPlan, strPlan := chaosPlan(4242, false), chaosPlan(4242, false)
		mat, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 4, Batched: batched, Plan: matPlan})
		if err != nil {
			t.Fatalf("%s materialized: %v", label, err)
		}
		str, err := RunTransportStream(cfg, TransportOpts{Shards: 2, Workers: 4, Batched: batched, Plan: strPlan})
		if err != nil {
			t.Fatalf("%s streaming: %v", label, err)
		}
		if matPlan.InjectedTotal() == 0 || strPlan.InjectedTotal() == 0 {
			t.Fatalf("%s: chaos did not fire: %d materialized, %d streaming faults",
				label, matPlan.InjectedTotal(), strPlan.InjectedTotal())
		}
		if matPlan.InjectedTotal() != strPlan.InjectedTotal() {
			t.Fatalf("%s: fault draws diverged: %d materialized vs %d streaming",
				label, matPlan.InjectedTotal(), strPlan.InjectedTotal())
		}
		assertStreamEquivalence(t, label, mat, str)
	}
}

// TestStreamValidation pins the option surface: streaming-only options
// are rejected on the materialized path, materialized-only inputs on
// the streaming path.
func TestStreamValidation(t *testing.T) {
	cfg := streamConfig(10, 2)
	if _, err := RunTransportWith(cfg, TransportOpts{Shards: 1, Energy: true}); err == nil {
		t.Fatal("materialized path accepted Energy")
	}
	if _, err := RunTransportWith(cfg, TransportOpts{Shards: 1, Lean: true}); err == nil {
		t.Fatal("materialized path accepted Lean")
	}
	if _, err := newStreamEnv(cfg, TransportOpts{}); err == nil {
		t.Fatal("streaming path accepted zero shards")
	}
	pre := cfg
	popCfg := pre.TraceCfg
	popCfg.Users = 5
	pop, err := trace.Generate(popCfg)
	if err != nil {
		t.Fatal(err)
	}
	pre.Population = pop
	if _, err := newStreamEnv(pre, TransportOpts{Shards: 1}); err == nil {
		t.Fatal("streaming path accepted a materialized population")
	}
	bad := cfg
	bad.TraceCfg.Users = -1
	if _, err := RunTransportStream(bad, TransportOpts{Shards: 1}); err == nil {
		t.Fatal("streaming path accepted an invalid trace config")
	}
}

// TestStreamBoundedMemory is the scale acceptance: 100k devices
// replayed through the streaming scheduler must fit under a pinned
// heap budget, and well under the same replay run materialized. The
// config skews toward long media-heavy sessions so the materialized
// timelines balloon (media apps emit a refresh event every few
// seconds) while the HTTP op count stays bounded via a coarse ad
// refresh interval — exactly the regime where lazy derivation pays.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-device HTTP replay x2")
	}
	const users = 100_000
	cfg := streamConfig(users, 1)
	cfg.WarmupDays = 0
	cfg.TraceCfg.SessionsPerDayMedian = 2
	cfg.TraceCfg.SessionMedianSec = 600
	cfg.TraceCfg.MaxSessionSec = 1200
	cfg.RefreshInterval = 10 * time.Minute
	cfg.Core.Server.Period = 12 * time.Hour

	heapNow := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	// highWater runs fn while sampling HeapAlloc and returns the peak
	// growth over the pre-run (collected) baseline.
	highWater := func(fn func() (*Result, error)) (*Result, uint64) {
		base := heapNow()
		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-time.After(50 * time.Millisecond):
				}
				runtime.ReadMemStats(&ms)
				if h := ms.HeapAlloc; h > peak.Load() {
					peak.Store(h)
				}
			}
		}()
		res, err := fn()
		close(stop)
		<-done
		if err != nil {
			t.Fatal(err)
		}
		if peak.Load() <= base {
			t.Fatalf("high-water not measurable: peak %d <= base %d", peak.Load(), base)
		}
		return res, peak.Load() - base
	}

	o := TransportOpts{Shards: 2, Workers: 4, Batched: true}
	oStream := o
	oStream.Lean = true
	str, streamHigh := highWater(func() (*Result, error) { return RunTransportStream(cfg, oStream) })
	if str.Counters.SlotsServed == 0 {
		t.Fatalf("inert run: %+v", str.Counters)
	}
	if str.PerClient != nil {
		t.Fatal("Lean run still carries per-client counters")
	}
	mat, matHigh := highWater(func() (*Result, error) { return RunTransportWith(cfg, o) })

	// Same replay, so same outcomes — the scale run doubles as a
	// differential point.
	if got, want := LedgerJSON(str.Ledger), LedgerJSON(mat.Ledger); got != want {
		t.Fatalf("ledger differs at 100k devices:\n materialized: %s\n streaming:    %s", want, got)
	}
	if str.Counters != mat.Counters {
		t.Fatalf("counters differ at 100k devices:\n materialized: %+v\n streaming:    %+v", mat.Counters, str.Counters)
	}

	// Pinned budget: the streaming run's whole working set — devices,
	// server pool, wake heaps, transient derivations, GC slack — for
	// 100k clients. Measured ~1.1 GiB high-water (~0.55 GiB live); the
	// budget leaves headroom for GC timing while still regressing any
	// O(population x sessions) resident state, which alone would add
	// ~0.5 GiB live / ~1 GiB high-water here (the materialized run
	// demonstrates exactly that).
	const budget = 1700 << 20 // 1.7 GiB
	t.Logf("heap high-water: streaming %.1f MiB vs materialized %.1f MiB (budget %.0f MiB)",
		float64(streamHigh)/(1<<20), float64(matHigh)/(1<<20), float64(budget)/(1<<20))
	if streamHigh > budget {
		t.Fatalf("streaming heap high-water %d exceeds budget %d", streamHigh, budget)
	}
	if float64(streamHigh) > 0.75*float64(matHigh) {
		t.Fatalf("streaming heap high-water %d not well below materialized replay's %d", streamHigh, matHigh)
	}
}
