// Package sim runs the end-to-end evaluation: it replays a population
// of usage traces against an assembled ad system (core.System) and a
// per-device radio energy model, producing the energy / SLA / revenue
// numbers behind every figure in the evaluation.
//
// The simulation is a single-threaded discrete-event loop, deterministic
// for a given configuration, with three event sources: per-user trace
// timelines (app traffic and ad slots), global prefetch-period
// boundaries, and the warm-up/selling transition.
package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/auction"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config assembles one simulation run.
type Config struct {
	// Population to replay; if nil, one is generated from TraceCfg.
	Population *trace.Population
	TraceCfg   trace.GenConfig
	Catalog    *trace.Catalog // nil = DefaultCatalog

	// MaxUsers truncates the population for quick runs (0 = all).
	MaxUsers int

	Radio radio.Profile

	// WiFiSchedule, when enabled, models mixed connectivity: each user
	// is on WiFi during their personal home window (roughly evenings and
	// nights) and on the cellular Radio otherwise. Transfers route to
	// whichever radio is active, each with its own tail state.
	WiFiSchedule WiFiSchedule

	AdBytes int64

	// ReportBytes charges a radio transfer per cache-hit display report.
	// The deployed design batches reports and piggybacks them on
	// existing transfers (their bytes are negligible and they never wake
	// the radio), so the default is 0; setting it nonzero models a
	// naive report-at-display-time client, an ablation worth measuring —
	// an immediate 200-byte report costs nearly as much as fetching the
	// ad, erasing the prefetch savings.
	ReportBytes int64

	RefreshInterval time.Duration

	// Core selects mode, delivery policy and server policy (including
	// the prefetch period).
	Core core.Config

	// Demand and Reserve shape the exchange.
	Demand  auction.DemandConfig
	Reserve float64

	// WarmupDays trains predictors before selling begins; all monetary
	// and energy metrics are measured after warm-up.
	WarmupDays int

	// ReportLossProb injects failure: a display report is lost with this
	// probability (the impression goes unbilled and expires).
	ReportLossProb float64

	// ChurnProb injects failure: each user is offline (no sessions, no
	// radio, no deliveries) for any given prefetch period with this
	// probability. Overbooked replication is what keeps sold impressions
	// displayable despite churn.
	ChurnProb float64

	Seed int64
}

// WiFiSchedule models when users are on WiFi (home/office coverage).
type WiFiSchedule struct {
	// Enabled turns the mixed-connectivity model on.
	Enabled bool
	// HomeStartHour..HomeEndHour (wrapping midnight) is the nominal WiFi
	// window; each user's window is phase-shifted deterministically.
	HomeStartHour int
	HomeEndHour   int
	// Coverage is the probability a user has WiFi at home at all.
	Coverage float64
}

// DefaultWiFiSchedule returns evenings-and-nights-at-home coverage:
// WiFi from 19:00 to 08:00 for 80% of users.
func DefaultWiFiSchedule() WiFiSchedule {
	return WiFiSchedule{Enabled: true, HomeStartHour: 19, HomeEndHour: 8, Coverage: 0.8}
}

// onWiFi reports whether a user is on WiFi at an instant; shift
// personalizes the window by +-2h per user.
func (w WiFiSchedule) onWiFi(hasWiFi bool, shift int, at simclock.Time) bool {
	if !w.Enabled || !hasWiFi {
		return false
	}
	h := (at.HourOfDay() + shift + 24) % 24
	start, end := w.HomeStartHour, w.HomeEndHour
	if start <= end {
		return h >= start && h < end
	}
	return h >= start || h < end
}

// DefaultConfig returns a moderately sized run (a subsample of the full
// population so unit-test and example runs finish in seconds); cmd/
// experiments scales it up.
func DefaultConfig(mode core.Mode) Config {
	tc := trace.DefaultGenConfig()
	tc.Users = 200
	tc.Days = 10
	return Config{
		TraceCfg:        tc,
		Radio:           radio.Profile3G(),
		AdBytes:         2048,
		ReportBytes:     0,
		RefreshInterval: 30 * time.Second,
		Core:            core.DefaultConfig(mode),
		Demand:          auction.DefaultDemand(),
		Reserve:         0.0002, // $0.20 CPM floor, well under the ~$1 CPM bid median
		WarmupDays:      5,
		Seed:            1,
	}
}

// Validate checks the run configuration.
func (c Config) Validate() error {
	if err := c.Radio.Validate(); err != nil {
		return err
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	switch {
	case c.AdBytes <= 0:
		return fmt.Errorf("sim: AdBytes must be positive, got %d", c.AdBytes)
	case c.ReportBytes < 0:
		return fmt.Errorf("sim: negative ReportBytes")
	case c.RefreshInterval <= 0:
		return fmt.Errorf("sim: RefreshInterval must be positive, got %v", c.RefreshInterval)
	case c.WarmupDays < 0:
		return fmt.Errorf("sim: negative WarmupDays")
	case c.ReportLossProb < 0 || c.ReportLossProb > 1:
		return fmt.Errorf("sim: ReportLossProb must be in [0,1], got %v", c.ReportLossProb)
	case c.ChurnProb < 0 || c.ChurnProb > 1:
		return fmt.Errorf("sim: ChurnProb must be in [0,1], got %v", c.ChurnProb)
	case c.Reserve < 0:
		return fmt.Errorf("sim: negative Reserve")
	}
	return nil
}

// Result is the outcome of one run, measured after warm-up.
type Result struct {
	Mode     core.Mode
	Delivery core.Delivery
	Users    int
	Days     int // measured days (post warm-up)

	// Energy over the measurement window, attributed per the radio model.
	AdEnergyJ  float64
	AppEnergyJ float64

	// Money and SLA outcomes.
	Ledger auction.Ledger

	// Client-side counters.
	Counters client.Counters

	// Aggregated per-period server stats.
	SoldTotal    int64
	ReplicaTotal int64
	PlacedTotal  int64
	Periods      int

	// PerUserAdJPerDay is the distribution of ad energy per user per
	// measured day, for the fairness/distribution figure.
	PerUserAdJPerDay metrics.Sample

	// CampaignBilled is each campaign's billed revenue, for checking
	// that prefetching does not distort auction outcomes.
	CampaignBilled map[auction.CampaignID]float64

	// Resilience outcomes of the chaos path (RunTransportChaos); zero
	// elsewhere. RetryEnergyJ is the radio-model cost of retries alone —
	// the energy price the fleet pays for robustness under the fault
	// plan — and Net aggregates the per-device transport counters.
	RetryEnergyJ   float64
	FaultsInjected int64
	Net            transport.NetCounters

	// Restarts counts the process kills the crash harness injected and
	// recovered from (RunTransportCrash; zero elsewhere).
	Restarts int

	// PerClient maps user id to that device's own counters on the
	// transport path (nil on the in-process path). The differential
	// batching suite compares it field-for-field between wire modes; the
	// aggregate Counters above is its sum.
	PerClient map[int]client.Counters

	// Obs is the server-side metrics registry of a transport run (nil on
	// the in-process path): per-endpoint latency/size histograms, status
	// counts, per-shard gauges — everything GET /v1/metrics would serve.
	// ClientObs aggregates the device fleet's client-side instrumentation
	// (retries, backoff, cache hit/miss, deferred depth, retry energy).
	Obs       *obs.Registry
	ClientObs *obs.Registry

	// Multi-tenant outcomes of a registry-backed transport run (zero
	// elsewhere). TenantLedgers is each named tenant's ledger view summed
	// across shards and nodes; TenantSlotP99NS each tenant's
	// client-observed HandleSlot p99 in nanoseconds (the legacy tenant
	// appears under "" when any device is unowned). FloodAdmitted and
	// FloodShed count the noisy-neighbor load source's accepted and
	// rate-limited requests (TransportOpts.Flood).
	TenantLedgers   map[string]auction.Ledger
	TenantSlotP99NS map[string]float64
	FloodAdmitted   int64
	FloodShed       int64

	// StreamPeriods is the streaming replay's per-period load report
	// (RunTransportStream; nil elsewhere): one row per simulated period
	// with the client-observed request-latency quantiles, so a diurnal
	// run exposes its peak-hour tail directly.
	StreamPeriods []StreamPeriodStat
}

// StreamPeriodStat is one period of a streaming replay as the device
// fleet experienced it: how many clients woke up, how many requests
// they issued, how long the period took in wall time, and the latency
// distribution of the individual requests.
type StreamPeriodStat struct {
	Index     int // period index from trace start
	HourOfDay int // simulated hour at the period's open
	Wakeups   int64
	Ops       int64
	WallNS    int64
	P50NS     float64
	P95NS     float64
	P99NS     float64
}

// OpsPerSec is the period's client-side request throughput in wall time.
func (s StreamPeriodStat) OpsPerSec() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	return float64(s.Ops) / (float64(s.WallNS) / 1e9)
}

// AdEnergyPerUserDay returns the headline metric: joules of ad energy
// per user per day.
func (r Result) AdEnergyPerUserDay() float64 {
	if r.Users == 0 || r.Days == 0 {
		return 0
	}
	return r.AdEnergyJ / float64(r.Users) / float64(r.Days)
}

// MeanReplication returns average replicas per placed impression.
func (r Result) MeanReplication() float64 {
	if r.PlacedTotal == 0 {
		return 0
	}
	return float64(r.ReplicaTotal) / float64(r.PlacedTotal)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: ad %.1f J/user/day, hit %.0f%%, SLA viol %.3g%%, rev loss %.3g%%",
		r.Mode, r.Delivery, r.AdEnergyPerUserDay(), 100*r.Counters.HitRate(),
		100*r.Ledger.ViolationRate(), 100*r.Ledger.RevenueLossFrac())
}

// timelineEvent is one precomputed user event.
type timelineEvent struct {
	at    simclock.Time
	bytes int64 // app transfer size; 0 for slot events
	slot  bool
	cats  []trace.Category // slot's app category
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pop := cfg.Population
	if pop == nil {
		var err error
		pop, err = trace.Generate(cfg.TraceCfg)
		if err != nil {
			return nil, err
		}
	}
	users := pop.Users
	if cfg.MaxUsers > 0 && cfg.MaxUsers < len(users) {
		users = users[:cfg.MaxUsers]
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = trace.NewCatalog(trace.DefaultCatalog())
	}
	warmupEnd := simclock.Time(cfg.WarmupDays) * simclock.Day
	if warmupEnd > pop.Span {
		return nil, fmt.Errorf("sim: warm-up %d days exceeds trace span %v", cfg.WarmupDays, pop.Span)
	}
	period := cfg.Core.Server.Period

	// Exchange and system assembly.
	rng := simclock.NewRand(cfg.Seed).Stream("sim")
	ex, err := auction.NewExchange(cfg.Demand.Generate(rng.Stream("demand")), cfg.Reserve)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(users))
	byID := make(map[int]*trace.User, len(users))
	for i, u := range users {
		ids[i] = u.ID
		byID[u.ID] = u
	}
	oracleSeries := func(id int) []int {
		return trace.SlotsPerPeriod(byID[id], cat, cfg.RefreshInterval, period, pop.Span)
	}
	hintsOf := topCategories(users, cat)
	sys, err := core.New(cfg.Core, ex, ids, oracleSeries, func(id int) []trace.Category { return hintsOf[id] })
	if err != nil {
		return nil, err
	}

	// Per-user radios and timelines. Under mixed connectivity each user
	// carries a second (WiFi) radio with independent tail state.
	radios := make(map[int]*radio.Radio, len(users))
	wifiRadios := make(map[int]*radio.Radio, len(users))
	hasWiFi := make(map[int]bool, len(users))
	wifiShift := make(map[int]int, len(users))
	timelines := make(map[int][]timelineEvent, len(users))
	wifiRNG := rng.Stream("wifi")
	for _, u := range users {
		radios[u.ID] = radio.New(cfg.Radio)
		timelines[u.ID] = buildTimeline(u, cat, cfg.RefreshInterval)
		if cfg.WiFiSchedule.Enabled {
			wifiRadios[u.ID] = radio.New(radio.ProfileWiFi())
			r := wifiRNG.StreamN("user", u.ID)
			hasWiFi[u.ID] = r.Bernoulli(cfg.WiFiSchedule.Coverage)
			wifiShift[u.ID] = r.Intn(5) - 2
		}
	}
	activeRadio := func(uid int, at simclock.Time) *radio.Radio {
		if cfg.WiFiSchedule.onWiFi(hasWiFi[uid], wifiShift[uid], at) {
			return wifiRadios[uid]
		}
		return radios[uid]
	}

	if cfg.ReportLossProb > 0 {
		lossRNG := rng.Stream("report-loss")
		sys.SetReportHook(func(auction.ImpressionID, simclock.Time) bool {
			return !lossRNG.Bernoulli(cfg.ReportLossProb)
		})
	}
	var offline func(uid int, at simclock.Time) bool
	if cfg.ChurnProb > 0 {
		churnRNG := rng.Stream("churn")
		periodsTotal := int(pop.Span/simclock.Time(period)) + 1
		down := make(map[int][]bool, len(users))
		for _, u := range users {
			v := make([]bool, periodsTotal)
			r := churnRNG.StreamN("user", u.ID)
			for i := range v {
				v[i] = r.Bernoulli(cfg.ChurnProb)
			}
			down[u.ID] = v
		}
		offline = func(uid int, at simclock.Time) bool {
			v := down[uid]
			i := int(at / simclock.Time(period))
			return i >= 0 && i < len(v) && v[i]
		}
		sys.SetOfflineFn(offline)
	}
	q := simclock.NewQueue()
	var simErr error
	fail := func(err error) {
		if simErr == nil {
			simErr = err
		}
	}

	owner := func(now simclock.Time, kind string) radio.Owner {
		if now < warmupEnd {
			return "warmup"
		}
		return radio.Owner(kind)
	}

	// Per-user event pumps.
	var pump func(uid int, idx int) func(*simclock.Queue)
	pump = func(uid int, idx int) func(*simclock.Queue) {
		return func(q *simclock.Queue) {
			tl := timelines[uid]
			ev := tl[idx]
			now := q.Now()
			if offline != nil && offline(uid, now) {
				// Device is off the network this period: nothing happens.
				if idx+1 < len(tl) {
					q.Schedule(tl[idx+1].at, "user", pump(uid, idx+1))
				}
				return
			}
			r := activeRadio(uid, now)
			if !ev.slot {
				r.Transfer(now, ev.bytes, owner(now, "app"))
			} else {
				out, err := sys.HandleSlot(now, uid, ev.cats)
				if err != nil {
					fail(err)
					return
				}
				if out.PiggybackAds > 0 {
					r.Transfer(now, int64(out.PiggybackAds)*cfg.AdBytes, owner(now, "ads"))
				}
				if out.Fetched {
					r.Transfer(now, cfg.AdBytes*int64(1+out.TopUpAds), owner(now, "ads"))
				} else if out.CacheHit && cfg.ReportBytes > 0 {
					r.Transfer(now, cfg.ReportBytes, owner(now, "ads"))
				}
			}
			if idx+1 < len(tl) {
				q.Schedule(tl[idx+1].at, "user", pump(uid, idx+1))
			}
		}
	}
	for _, u := range users {
		if len(timelines[u.ID]) > 0 {
			q.Schedule(timelines[u.ID][0].at, "user", pump(u.ID, 0))
		}
	}

	// Period boundary chain.
	res := &Result{Mode: cfg.Core.Mode, Delivery: cfg.Core.Delivery, Users: len(users)}
	var warmupCounters client.Counters
	periodsTotal := int(pop.Span / simclock.Time(period))
	var boundary func(pi int) func(*simclock.Queue)
	boundary = func(pi int) func(*simclock.Queue) {
		return func(q *simclock.Queue) {
			now := q.Now()
			if pi > 0 {
				prev := predict.PeriodOf(now-simclock.Time(period), period)
				sys.EndPeriod(now, prev)
			}
			if now >= warmupEnd && !sys.Selling() {
				sys.SetSelling(true)
				warmupCounters = sys.Counters()
			}
			if pi < periodsTotal {
				p := predict.PeriodOf(now, period)
				deliveries, stats := sys.StartPeriod(now, p)
				if sys.Selling() {
					res.SoldTotal += int64(stats.Sold)
					res.ReplicaTotal += int64(stats.Replicas)
					res.PlacedTotal += int64(stats.Placed)
					res.Periods++
				}
				for _, d := range deliveries {
					activeRadio(d.Client, now).Transfer(now, int64(d.Ads)*cfg.AdBytes, owner(now, "ads"))
				}
				q.Schedule(now.Add(period), "period", boundary(pi+1))
			}
		}
	}
	q.Schedule(0, "period", boundary(0))

	if err := q.Run(1 << 62); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}

	// Final sweep for impressions still open at trace end.
	ex.SweepExpired(pop.Span + simclock.Week)

	res.Days = pop.Days() - cfg.WarmupDays
	for _, u := range users {
		r := radios[u.ID]
		r.Flush()
		adJ := r.UsageOf("ads").TotalJ()
		appJ := r.UsageOf("app").TotalJ()
		if w := wifiRadios[u.ID]; w != nil {
			w.Flush()
			adJ += w.UsageOf("ads").TotalJ()
			appJ += w.UsageOf("app").TotalJ()
		}
		res.AdEnergyJ += adJ
		res.AppEnergyJ += appJ
		if res.Days > 0 {
			res.PerUserAdJPerDay.Add(adJ / float64(res.Days))
		}
	}
	res.Ledger = ex.Ledger()
	res.Counters = sys.Counters().Sub(warmupCounters)
	res.CampaignBilled = make(map[auction.CampaignID]float64, cfg.Demand.Campaigns)
	for i := 0; i < cfg.Demand.Campaigns; i++ {
		id := auction.CampaignID(i)
		if billed, _, err := ex.CampaignSpend(id); err == nil {
			res.CampaignBilled[id] = billed
		}
	}
	return res, nil
}

// buildTimeline expands one user's sessions into app transfers and ad
// slots, sorted by time.
func buildTimeline(u *trace.User, cat *trace.Catalog, refresh time.Duration) []timelineEvent {
	var tl []timelineEvent
	for _, s := range u.Sessions {
		app := cat.App(s.App)
		if app.StartupBytes > 0 {
			tl = append(tl, timelineEvent{at: s.Start, bytes: app.StartupBytes})
		}
		if app.RefreshEverySec > 0 && app.RefreshBytes > 0 {
			step := time.Duration(app.RefreshEverySec * float64(time.Second))
			for at := s.Start.Add(step); at.Before(s.End()); at = at.Add(step) {
				tl = append(tl, timelineEvent{at: at, bytes: app.RefreshBytes})
			}
		}
		if app.AdSupported {
			cats := []trace.Category{app.Category}
			for _, at := range trace.SlotsOfSession(s, refresh) {
				tl = append(tl, timelineEvent{at: at, slot: true, cats: cats})
			}
		}
	}
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].at < tl[j].at })
	return tl
}

// topCategories computes each user's dominant app categories (by
// session count) for auction targeting hints.
func topCategories(users []*trace.User, cat *trace.Catalog) map[int][]trace.Category {
	out := make(map[int][]trace.Category, len(users))
	for _, u := range users {
		out[u.ID] = topCategoriesOf(u, cat)
	}
	return out
}

// topCategoriesOf is the per-user form: the streaming replay computes
// hints one transiently-derived user at a time.
func topCategoriesOf(u *trace.User, cat *trace.Catalog) []trace.Category {
	counts := map[trace.Category]int{}
	for _, s := range u.Sessions {
		counts[cat.App(s.App).Category]++
	}
	type kv struct {
		c trace.Category
		n int
	}
	var all []kv
	for c, n := range counts {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].c < all[j].c
	})
	top := make([]trace.Category, 0, 3)
	for i, e := range all {
		if i == 3 {
			break
		}
		top = append(top, e.c)
	}
	return top
}

// Compare runs the same configuration under several modes and renders
// the comparison row the F7/F8 experiments are built from. The baseline
// (first mode) defines the 100% energy reference.
func Compare(base Config, modes []core.Mode) ([]*Result, error) {
	results := make([]*Result, 0, len(modes))
	for _, m := range modes {
		cfg := base
		cfg.Core = retargetMode(base.Core, m)
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: mode %v: %w", m, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// retargetMode rebuilds a core config for a different mode, preserving
// the shared knobs (period, delivery, deadlines, latencies).
func retargetMode(base core.Config, m core.Mode) core.Config {
	cfg := core.DefaultConfig(m)
	cfg.Delivery = base.Delivery
	cfg.Server.Period = base.Server.Period
	cfg.Server.AdDeadline = base.Server.AdDeadline
	cfg.Server.ReportLatency = base.Server.ReportLatency
	cfg.Server.SyncDelay = base.Server.SyncDelay
	cfg.Percentile = base.Percentile
	cfg.NaiveK = base.NaiveK
	cfg.CacheCap = base.CacheCap
	if m == base.Mode {
		// Keep the caller's overbooking knobs for its own mode.
		cfg.Server.Overbook = base.Server.Overbook
	}
	return cfg
}

// CompareTable renders mode comparison results; the first row is the
// savings baseline.
func CompareTable(title string, results []*Result) *metrics.Table {
	t := metrics.NewTable(title,
		"mode", "delivery", "ad J/user/day", "saving", "hit rate", "SLA viol", "rev loss", "mean k")
	if len(results) == 0 {
		return t
	}
	base := results[0].AdEnergyPerUserDay()
	for _, r := range results {
		t.AddRow(r.Mode.String(), r.Delivery.String(),
			r.AdEnergyPerUserDay(),
			fmt.Sprintf("%.1f%%", metrics.PercentChange(base, r.AdEnergyPerUserDay())),
			fmt.Sprintf("%.1f%%", 100*r.Counters.HitRate()),
			fmt.Sprintf("%.3g%%", 100*r.Ledger.ViolationRate()),
			fmt.Sprintf("%.3g%%", 100*r.Ledger.RevenueLossFrac()),
			fmt.Sprintf("%.2f", r.MeanReplication()))
	}
	return t
}
