package sim

import (
	"math"
	"testing"

	"repro/internal/core"
)

// transportConfig returns a small run whose monetary outcome is
// provably independent of shard count and request interleaving:
// ModeNaiveBulk pins FixedReplicas=1 and AdmissionEpsilon=0.5 (additive
// admission with integral per-client means), NoRescue removes
// cross-client claim stealing, and untargeted campaigns with huge
// budgets make every sale price constant. Under that contract the total
// is a sum of per-client outcomes, and partitioning clients across
// shards cannot change it.
func transportConfig() Config {
	cfg := DefaultConfig(core.ModeNaiveBulk)
	cfg.TraceCfg.Users = 40
	cfg.TraceCfg.Days = 4
	cfg.MaxUsers = 40
	cfg.WarmupDays = 1
	cfg.Core.NoRescue = true
	cfg.Demand.TargetedFrac = 0
	cfg.Demand.BudgetImpressions = 1_000_000_000
	return cfg
}

// The tentpole's end-to-end acceptance: the same trace replayed through
// the HTTP serving path with 1 shard and with 4 shards must produce
// byte-identical ledgers and SLA outcomes.
func TestTransportShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay")
	}
	cfg := transportConfig()

	r1, err := RunTransport(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunTransport(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Ledger.Sold == 0 || r1.Ledger.Billed == 0 {
		t.Fatalf("inert run: %+v", r1.Ledger)
	}
	if got, want := LedgerJSON(r4.Ledger), LedgerJSON(r1.Ledger); got != want {
		t.Fatalf("ledger depends on shard count:\n 1 shard: %s\n 4 shards: %s", want, got)
	}
	if r1.Ledger.Violations != r4.Ledger.Violations {
		t.Fatalf("SLA violations differ: %d vs %d", r1.Ledger.Violations, r4.Ledger.Violations)
	}
	if r1.SoldTotal != r4.SoldTotal || r1.Counters.SlotsServed != r4.Counters.SlotsServed {
		t.Fatalf("replay drift: sold %d/%d slots %d/%d",
			r1.SoldTotal, r4.SoldTotal, r1.Counters.SlotsServed, r4.Counters.SlotsServed)
	}
	// Per-campaign revenue must agree too, not just the totals. The
	// same displays are billed at the same prices; only the float
	// summation order differs across shards, so allow that much.
	for id, b1 := range r1.CampaignBilled {
		if b4 := r4.CampaignBilled[id]; math.Abs(b4-b1) > 1e-9*(1+math.Abs(b1)) {
			t.Fatalf("campaign %d billed %v (1 shard) vs %v (4 shards)", id, b1, b4)
		}
	}
}

// Run-to-run repeatability: the concurrent replay must not let
// scheduling leak into results (per-device order is preserved and the
// contract above makes cross-device order irrelevant).
func TestTransportRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay")
	}
	cfg := transportConfig()
	a, err := RunTransport(cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTransport(cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if LedgerJSON(a.Ledger) != LedgerJSON(b.Ledger) {
		t.Fatalf("nondeterministic replay:\n%s\n%s", LedgerJSON(a.Ledger), LedgerJSON(b.Ledger))
	}
}

// The HTTP path must agree with the in-process engine on the physical
// counters that don't depend on policy internals: slots served is a
// property of the trace alone.
func TestTransportMatchesInProcessSlots(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay")
	}
	cfg := transportConfig()
	ht, err := RunTransport(cfg, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ht.Counters.SlotsServed != ip.Counters.SlotsServed {
		t.Fatalf("slots served: HTTP %d vs in-process %d",
			ht.Counters.SlotsServed, ip.Counters.SlotsServed)
	}
	if ht.Users != ip.Users || ht.Days != ip.Days {
		t.Fatalf("population drift: %d/%d users, %v/%v days", ht.Users, ip.Users, ht.Days, ip.Days)
	}
}

func TestTransportValidation(t *testing.T) {
	cfg := transportConfig()
	if _, err := RunTransport(cfg, 0, 1); err == nil {
		t.Fatal("zero shards accepted")
	}
	cfg.ChurnProb = 0.5
	if _, err := RunTransport(cfg, 1, 1); err == nil {
		t.Fatal("failure injection accepted on the transport path")
	}
	cfg = transportConfig()
	cfg.Core.Delivery = core.DeliverPiggyback
	if _, err := RunTransport(cfg, 1, 1); err == nil {
		t.Fatal("piggyback delivery accepted on the transport path")
	}
}

func TestRunParallelTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay")
	}
	cfg := transportConfig()
	cfg.TraceCfg.Users = 16
	cfg.MaxUsers = 16
	cfg.TraceCfg.Days = 2
	cfg.WarmupDays = 0
	res, err := RunParallelTransport([]Config{cfg, cfg}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || LedgerJSON(res[0].Ledger) != LedgerJSON(res[1].Ledger) {
		t.Fatalf("parallel transport runs disagree: %+v", res)
	}
}
