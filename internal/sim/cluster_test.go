package sim

import (
	"fmt"
	"testing"

	"repro/internal/faults"
)

// TestClusterEquivalenceFaultFree is the cluster tier's baseline
// acceptance: a cluster of N independent single-shard nodes behind the
// routing tier must be indistinguishable from one process at shards=N
// on every accounting observable — ledger, violations, per-device and
// aggregate counters, sales totals, campaign spend — at N=1 and N=3,
// on both wire modes, and with per-node WALs attached as pure
// observers.
func TestClusterEquivalenceFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay across a multi-node cluster")
	}
	cfg := crashConfig()
	var base3 *Result
	for _, nodes := range []int{1, 3} {
		label := fmt.Sprintf("nodes=%d", nodes)
		base, err := RunTransportWith(cfg, TransportOpts{Shards: nodes, Workers: 4})
		if err != nil {
			t.Fatalf("%s baseline: %v", label, err)
		}
		clu, err := RunTransportCluster(cfg, nodes, 4, TransportOpts{})
		if err != nil {
			t.Fatalf("%s cluster: %v", label, err)
		}
		assertCrashEquivalence(t, label, base, clu)
		if nodes == 3 {
			base3 = base
		}
	}

	// The coalesced wire mode rides through the router unchanged: the
	// binary batch frame carries its routing client in the header.
	baseB, err := RunTransportWith(cfg, TransportOpts{Shards: 3, Workers: 4, Batched: true, BinaryBatch: true})
	if err != nil {
		t.Fatalf("batched baseline: %v", err)
	}
	cluB, err := RunTransportCluster(cfg, 3, 4, TransportOpts{Batched: true, BinaryBatch: true})
	if err != nil {
		t.Fatalf("batched cluster: %v", err)
	}
	assertCrashEquivalence(t, "nodes=3/batched", baseB, cluB)

	// Per-node durability with no kills must be a pure observer.
	walled, err := RunTransportCluster(cfg, 3, 4, TransportOpts{WALDir: t.TempDir(), SnapshotEvery: 3})
	if err != nil {
		t.Fatalf("walled cluster: %v", err)
	}
	if walled.Restarts != 0 {
		t.Fatalf("cluster restarts without a crash schedule: %d", walled.Restarts)
	}
	assertCrashEquivalence(t, "nodes=3/wal-on", base3, walled)
}

// TestClusterEquivalenceUnderChaos runs the same seeded fault plan
// against one process at shards=3 and against a 3-node cluster. Fault
// decisions are pure hashes of (seed, endpoint, identity, attempt), so
// both topologies face the identical adversary on the device leg and
// must land on identical accounting.
func TestClusterEquivalenceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay across a multi-node cluster")
	}
	cfg := crashConfig()
	base, err := RunTransportWith(cfg, TransportOpts{Shards: 3, Workers: 4, Plan: chaosPlan(4242, false)})
	if err != nil {
		t.Fatalf("chaos baseline: %v", err)
	}
	plan := chaosPlan(4242, false)
	clu, err := RunTransportCluster(cfg, 3, 4, TransportOpts{Plan: plan})
	if err != nil {
		t.Fatalf("chaos cluster: %v", err)
	}
	if plan.Injected(faults.Drop) == 0 || plan.Injected(faults.ServerErr) == 0 {
		t.Fatalf("chaos did not fire on the cluster: drops=%d 5xx=%d",
			plan.Injected(faults.Drop), plan.Injected(faults.ServerErr))
	}
	if clu.Net.Retries == 0 {
		t.Fatalf("no retries under cluster chaos: %+v", clu.Net)
	}
	assertCrashEquivalence(t, "nodes=3/chaos", base, clu)
}

// TestClusterNodeKillEquivalence is the tentpole acceptance: whole
// nodes are killed at adversarial WAL-append instants — two different
// nodes in one run (double kill), mid-serving and mid-period-round —
// and each victim restarts, recovers from its own WAL, and rejoins the
// router. The recovered cluster runs must be indistinguishable from
// the uninterrupted single-process baseline, on both wire modes.
func TestClusterNodeKillEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay with node kill/restart")
	}
	cfg := crashConfig()
	var baseSeq *Result
	for _, batched := range []bool{false, true} {
		wire := "sequential"
		if batched {
			wire = "batched"
		}
		label := "nodes=3/" + wire
		base, err := RunTransportWith(cfg, TransportOpts{Shards: 3, Workers: 4, Batched: batched})
		if err != nil {
			t.Fatalf("%s baseline: %v", label, err)
		}
		if !batched {
			baseSeq = base
		}

		// Kill node 1 early, then node 2 later, with checkpoints
		// between: the second victim recovers from a snapshot plus a
		// log tail while the first is already back in rotation.
		var kills *faults.CrashSchedule
		if batched {
			kills = faults.NewCrashSchedule(
				faults.CrashPoint{Op: "batch", After: 2, Node: 1},
				faults.CrashPoint{Op: "batch", After: 8, Node: 2},
			)
		} else {
			kills = faults.NewCrashSchedule(
				faults.CrashPoint{Op: "report", After: 2, Node: 1},
				faults.CrashPoint{Op: "slot", After: 12, Node: 2},
			)
		}
		res, err := RunTransportCluster(cfg, 3, 4, TransportOpts{
			Batched: batched, WALDir: t.TempDir(), SnapshotEvery: 2, Crashes: kills,
		})
		if err != nil {
			t.Fatalf("%s double-kill: %v", label, err)
		}
		if res.Restarts != 2 || kills.Fired() != 2 {
			t.Fatalf("%s double-kill: restarts %d fired %d, want 2", label, res.Restarts, kills.Fired())
		}
		if got := res.Obs.CounterTotal("cluster_rejoins_total"); got != 2 {
			t.Fatalf("%s double-kill: router saw %d rejoins, want 2", label, got)
		}
		assertCrashEquivalence(t, label+" double-kill", base, res)
	}

	// Mid-fan-out: node 1 dies on its own period-round record, while
	// the coordinator's barrier is in flight across all three nodes;
	// the second kill lands on whichever node appends 30 records after
	// the first recovery (pure log replay — no checkpoints).
	barrier := faults.NewCrashSchedule(
		faults.CrashPoint{Op: "period_start", After: 1, Node: 1},
		faults.CrashPoint{After: 30, Node: faults.AnyNode},
	)
	res, err := RunTransportCluster(cfg, 3, 4, TransportOpts{WALDir: t.TempDir(), Crashes: barrier})
	if err != nil {
		t.Fatalf("mid-fan-out: %v", err)
	}
	if res.Restarts != 2 || barrier.Fired() != 2 {
		t.Fatalf("mid-fan-out: restarts %d fired %d, want 2", res.Restarts, barrier.Fired())
	}
	assertCrashEquivalence(t, "nodes=3 mid-fan-out", baseSeq, res)
}
