package sim

import (
	"testing"
)

// assertCodecEquivalence compares a JSON-envelope batched run against a
// binary-envelope batched run of the same trace. The codec is a pure
// wire encoding — decoded envelopes are value-identical, idempotency
// fingerprints hash the codec-independent sequential form, and WAL
// records re-marshal the decoded envelope — so unlike the
// sequential-vs-batched comparison, *everything* must match here,
// including the resilience counters: the same wake-ups, the same
// retries, the same attempts, just fewer bytes per envelope.
func assertCodecEquivalence(t *testing.T, label string, js, bin *Result) {
	t.Helper()
	if js.Ledger.Sold == 0 || js.Ledger.Billed == 0 {
		t.Fatalf("%s: inert JSON run: %+v", label, js.Ledger)
	}
	if got, want := LedgerJSON(bin.Ledger), LedgerJSON(js.Ledger); got != want {
		t.Fatalf("%s: ledger differs across codecs:\n json:   %s\n binary: %s", label, want, got)
	}
	if js.Ledger.Violations != bin.Ledger.Violations {
		t.Fatalf("%s: SLA violations differ: %d json vs %d binary",
			label, js.Ledger.Violations, bin.Ledger.Violations)
	}
	if js.Counters != bin.Counters {
		t.Fatalf("%s: aggregate counters differ:\n json:   %+v\n binary: %+v",
			label, js.Counters, bin.Counters)
	}
	if js.SoldTotal != bin.SoldTotal || js.Periods != bin.Periods {
		t.Fatalf("%s: server totals differ: sold %d/%d periods %d/%d",
			label, js.SoldTotal, bin.SoldTotal, js.Periods, bin.Periods)
	}
	if js.Net != bin.Net {
		t.Fatalf("%s: resilience counters differ:\n json:   %+v\n binary: %+v",
			label, js.Net, bin.Net)
	}
	if len(js.PerClient) != len(bin.PerClient) {
		t.Fatalf("%s: device count differs: %d vs %d", label, len(js.PerClient), len(bin.PerClient))
	}
	for id, jc := range js.PerClient {
		if bc := bin.PerClient[id]; bc != jc {
			t.Fatalf("%s: client %d counters differ:\n json:   %+v\n binary: %+v", label, id, jc, bc)
		}
	}
	for id, s := range js.CampaignBilled {
		if b := bin.CampaignBilled[id]; b != s {
			t.Fatalf("%s: campaign %d billed %v json vs %v binary", label, id, s, b)
		}
	}
}

// TestBinaryCodecEquivalence is the differential acceptance for the
// binary /v1/batch codec: the same seeded trace over JSON envelopes and
// over binary envelopes, at 1 shard and at 4, must produce identical
// outcomes on every axis — ledger, violations, per-client counters,
// resilience counters.
func TestBinaryCodecEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay x4")
	}
	cfg := transportConfig()
	for _, shards := range []int{1, 4} {
		js, err := RunTransportWith(cfg, TransportOpts{Shards: shards, Workers: 4, Batched: true})
		if err != nil {
			t.Fatalf("shards=%d json: %v", shards, err)
		}
		bin, err := RunTransportWith(cfg, TransportOpts{Shards: shards, Workers: 4, Batched: true, BinaryBatch: true})
		if err != nil {
			t.Fatalf("shards=%d binary: %v", shards, err)
		}
		label := map[int]string{1: "codec shards=1", 4: "codec shards=4"}[shards]
		assertCodecEquivalence(t, label, js, bin)
		if bin.Obs.CounterTotal("batch_round_trips_saved_total") == 0 {
			t.Fatalf("%s: binary run never used /v1/batch", label)
		}
	}
}

// TestBinaryCodecEquivalenceUnderChaos replays the codec differential
// under the partition-free chaos plan: drops, 5xx, lost replies, resets
// and truncations hit both codecs, and because the fault layer draws
// per-sub-op identities from the frame itself (binBatchWalk mirrors the
// binary format), the fault schedules — and therefore the outcomes —
// must stay aligned exactly.
func TestBinaryCodecEquivalenceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP chaos replay x4")
	}
	cfg := transportConfig()
	for _, shards := range []int{1, 4} {
		jsPlan, binPlan := chaosPlan(4242, false), chaosPlan(4242, false)
		js, err := RunTransportWith(cfg, TransportOpts{Shards: shards, Workers: 4, Plan: jsPlan, Batched: true})
		if err != nil {
			t.Fatalf("shards=%d json: %v", shards, err)
		}
		bin, err := RunTransportWith(cfg, TransportOpts{Shards: shards, Workers: 4, Plan: binPlan, Batched: true, BinaryBatch: true})
		if err != nil {
			t.Fatalf("shards=%d binary: %v", shards, err)
		}
		label := map[int]string{1: "codec chaos shards=1", 4: "codec chaos shards=4"}[shards]
		if jsPlan.InjectedTotal() == 0 || binPlan.InjectedTotal() == 0 {
			t.Fatalf("%s: chaos did not fire: %d json, %d binary faults",
				label, jsPlan.InjectedTotal(), binPlan.InjectedTotal())
		}
		assertCodecEquivalence(t, label, js, bin)
	}
}
