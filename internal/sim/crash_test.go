package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/tenant"
	"repro/internal/wal"
)

// crashConfig shrinks transportConfig so the kill/restart matrix stays
// affordable; the shard/interleaving-invariance contract is unchanged.
func crashConfig() Config {
	cfg := transportConfig()
	cfg.TraceCfg.Users = 24
	cfg.MaxUsers = 24
	cfg.TraceCfg.Days = 3
	return cfg
}

// assertCrashEquivalence compares a kill/restart run against the
// uninterrupted baseline of the same trace: recovery must be invisible
// to every accounting observable — the money ledger, SLA violations,
// per-device and aggregate client counters, server sales totals and
// per-campaign spend. Only the wire economics (Result.Net, retries
// burned riding out the outages) and Result.Restarts may differ.
func assertCrashEquivalence(t *testing.T, label string, base, crash *Result) {
	t.Helper()
	if base.Ledger.Sold == 0 || base.Ledger.Billed == 0 {
		t.Fatalf("%s: inert baseline: %+v", label, base.Ledger)
	}
	if got, want := LedgerJSON(crash.Ledger), LedgerJSON(base.Ledger); got != want {
		t.Fatalf("%s: ledger diverged across kills:\n baseline:  %s\n recovered: %s", label, want, got)
	}
	if base.Ledger.Violations != crash.Ledger.Violations {
		t.Fatalf("%s: SLA violations differ: %d baseline vs %d recovered",
			label, base.Ledger.Violations, crash.Ledger.Violations)
	}
	if base.Counters != crash.Counters {
		t.Fatalf("%s: aggregate counters differ:\n baseline:  %+v\n recovered: %+v",
			label, base.Counters, crash.Counters)
	}
	if base.SoldTotal != crash.SoldTotal || base.Periods != crash.Periods {
		t.Fatalf("%s: server totals differ: sold %d/%d periods %d/%d",
			label, base.SoldTotal, crash.SoldTotal, base.Periods, crash.Periods)
	}
	if len(base.PerClient) != len(crash.PerClient) {
		t.Fatalf("%s: device count differs: %d vs %d", label, len(base.PerClient), len(crash.PerClient))
	}
	for id, bc := range base.PerClient {
		if cc := crash.PerClient[id]; cc != bc {
			t.Fatalf("%s: client %d counters differ:\n baseline:  %+v\n recovered: %+v", label, id, bc, cc)
		}
	}
	if len(base.CampaignBilled) != len(crash.CampaignBilled) {
		t.Fatalf("%s: campaign count differs: %d vs %d",
			label, len(base.CampaignBilled), len(crash.CampaignBilled))
	}
	for id, b := range base.CampaignBilled {
		// Quantized at the nano-dollar like LedgerJSON: a campaign's
		// spend is a float sum grouped by whichever exchange billed each
		// impression, and a live migration regroups that sum — the
		// addends are identical but association-order jitter at ~1e-14
		// is not an accounting difference.
		c := crash.CampaignBilled[id]
		if fmt.Sprintf("%.9f", c) != fmt.Sprintf("%.9f", b) {
			t.Fatalf("%s: campaign %d billed %v baseline vs %v recovered", label, id, b, c)
		}
	}
}

// TestCrashRecoveryEquivalence is the tentpole acceptance: the service
// is killed at adversarial instants — mid-period between a WAL append
// and its ack, inside a batch envelope, during the period-end sweep,
// and again on the very first record the replacement appends — and the
// recovered runs must be indistinguishable from the uninterrupted
// baseline at 1 shard and at 4, on both wire modes.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay with kill/restart")
	}
	cfg := crashConfig()
	for _, shards := range []int{1, 4} {
		for _, batched := range []bool{false, true} {
			wire := "sequential"
			if batched {
				wire = "batched"
			}
			label := fmt.Sprintf("shards=%d/%s", shards, wire)
			base, err := RunTransportWith(cfg, TransportOpts{Shards: shards, Workers: 4, Batched: batched})
			if err != nil {
				t.Fatalf("%s baseline: %v", label, err)
			}

			// Mid-period kills, two of them, with checkpoints between:
			// the second recovery starts from a snapshot plus a log tail.
			var midPeriod *faults.CrashSchedule
			if batched {
				midPeriod = faults.NewCrashSchedule(
					faults.CrashPoint{Op: "batch", After: 3},
					faults.CrashPoint{Op: "batch", After: 40},
				)
			} else {
				midPeriod = faults.NewCrashSchedule(
					faults.CrashPoint{Op: "report", After: 3},
					faults.CrashPoint{Op: "slot", After: 40},
				)
			}
			res, err := RunTransportCrash(cfg, shards, 4, t.TempDir(), 2, midPeriod, batched)
			if err != nil {
				t.Fatalf("%s mid-period: %v", label, err)
			}
			if res.Restarts != 2 || midPeriod.Fired() != 2 {
				t.Fatalf("%s mid-period: restarts %d fired %d, want 2", label, res.Restarts, midPeriod.Fired())
			}
			assertCrashEquivalence(t, label+" mid-period", base, res)

			// A kill during the period-end round, then another on the
			// first record the replacement makes durable — recovery under
			// immediate re-crash, with no checkpoints (pure log replay).
			boundary := faults.NewCrashSchedule(
				faults.CrashPoint{Op: "period_end", After: 1},
				faults.CrashPoint{After: 1},
			)
			res, err = RunTransportCrash(cfg, shards, 4, t.TempDir(), 0, boundary, batched)
			if err != nil {
				t.Fatalf("%s period-end: %v", label, err)
			}
			if res.Restarts != 2 || boundary.Fired() != 2 {
				t.Fatalf("%s period-end: restarts %d fired %d, want 2", label, res.Restarts, boundary.Fired())
			}
			assertCrashEquivalence(t, label+" period-end", base, res)
		}
	}
}

// With durability on but no kills, the WAL must be a pure observer:
// identical outcomes to a bare run of the same trace.
func TestCrashWALIsPureObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay")
	}
	cfg := crashConfig()
	bare, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	walled, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 4, WALDir: t.TempDir(), SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if walled.Restarts != 0 {
		t.Fatalf("restarts without a crash schedule: %d", walled.Restarts)
	}
	assertCrashEquivalence(t, "wal-on", bare, walled)
}

// TestCrashAtEveryRecord kills the service once at record K for every
// K in the log of a tiny run: no append position — mid-batch, between
// append and ack, inside a period round — may exist where a crash loses
// or double-executes an operation.
func TestCrashAtEveryRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("one full replay per WAL record")
	}
	if raceEnabled {
		t.Skip("correctness matrix, not a concurrency test: hundreds of replays blow the race-detector time budget (the kill matrix still runs under -race)")
	}
	cfg := transportConfig()
	cfg.TraceCfg.Users = 2
	cfg.MaxUsers = 2
	cfg.TraceCfg.Days = 1
	cfg.WarmupDays = 0

	base, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Count the records an uninterrupted durable run appends.
	refDir := t.TempDir()
	if _, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 2, WALDir: refDir}); err != nil {
		t.Fatal(err)
	}
	n := countWALRecords(t, refDir)
	if n == 0 {
		t.Fatal("reference run appended no WAL records")
	}
	t.Logf("sweeping a kill across %d record positions", n)
	for k := 1; k <= n; k++ {
		sched := faults.NewCrashSchedule(faults.CrashPoint{After: k})
		res, err := RunTransportCrash(cfg, 2, 2, t.TempDir(), 0, sched, false)
		if err != nil {
			t.Fatalf("kill at record %d: %v", k, err)
		}
		if res.Restarts != 1 {
			t.Fatalf("kill at record %d: restarts %d", k, res.Restarts)
		}
		assertCrashEquivalence(t, fmt.Sprintf("kill at record %d", k), base, res)
	}
}

func countWALRecords(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "wal-") || !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := wal.Scan(f, nil)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Damaged {
			t.Fatalf("%s: damaged log from a clean run", e.Name())
		}
		total += int(res.Records)
	}
	return total
}

// TestCrashOnConfigEpochRecord extends the kill matrix to the config
// hot-reload path: the process is killed on the first config-epoch WAL
// record — the instant between the reload becoming durable and its ack
// — and must recover to exactly the post-reload table (the harness's
// posting retry is answered idempotently by the replayed epoch). The
// tenant limits are non-binding, so the recovered run must equal a
// baseline that hot-reloaded without being killed, on every accounting
// observable.
func TestCrashOnConfigEpochRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay with kill/restart")
	}
	cfg := crashConfig()
	table := []tenant.Config{{ID: "pubA", Lo: 0, Hi: 1 << 16}}
	epochs := []ConfigEpochStep{
		{Period: 8, Epoch: 2, Tenants: []tenant.Config{
			{ID: "pubA", Lo: 0, Hi: 1 << 16, RatePerSec: 1e6, Burst: 1e6},
		}},
	}
	for _, batched := range []bool{false, true} {
		wire := "sequential"
		if batched {
			wire = "batched"
		}
		base, err := RunTransportWith(cfg, TransportOpts{
			Shards: 2, Workers: 4, Batched: batched, Tenants: table, ConfigEpochs: epochs})
		if err != nil {
			t.Fatalf("%s baseline: %v", wire, err)
		}
		sched := faults.NewCrashSchedule(faults.CrashPoint{Op: "config_epoch", After: 1})
		res, err := RunTransportWith(cfg, TransportOpts{
			Shards: 2, Workers: 4, Batched: batched, Tenants: table, ConfigEpochs: epochs,
			WALDir: t.TempDir(), SnapshotEvery: 2, Crashes: sched,
		})
		if err != nil {
			t.Fatalf("%s config-epoch kill: %v", wire, err)
		}
		if res.Restarts != 1 || sched.Fired() != 1 {
			t.Fatalf("%s: config-epoch kill did not fire: restarts %d fired %d", wire, res.Restarts, sched.Fired())
		}
		assertCrashEquivalence(t, wire+" config-epoch kill", base, res)
	}
}

// TestCrashGroupCommitFsync runs the kill/restart matrix with real
// group-commit fsync on (TransportOpts.Fsync): one flush covers every
// envelope framed before it, and wal.Options.Hook fires after that
// covering flush but before the append returns — so each scheduled kill
// lands exactly between the batched fsync and the client ack, the
// group-commit window where an op is durable but unacknowledged. The
// client's retry straddles the restart and hits the replayed dedup
// window, so the recovered run must equal the uninterrupted baseline on
// every accounting observable, on both wire modes.
func TestCrashGroupCommitFsync(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP replay with kill/restart and fsync")
	}
	cfg := crashConfig()
	for _, batched := range []bool{false, true} {
		wire := "sequential"
		crashOp := "report"
		if batched {
			wire = "batched"
			crashOp = "batch"
		}
		label := "group-commit/" + wire
		base, err := RunTransportWith(cfg, TransportOpts{Shards: 2, Workers: 4, Batched: batched})
		if err != nil {
			t.Fatalf("%s baseline: %v", label, err)
		}
		// One kill inside the serving flow, one during the period-end
		// round, with a checkpoint between: the second recovery replays a
		// snapshot plus a fsynced log tail.
		sched := faults.NewCrashSchedule(
			faults.CrashPoint{Op: crashOp, After: 3},
			faults.CrashPoint{Op: "period_end", After: 1},
		)
		res, err := RunTransportWith(cfg, TransportOpts{
			Shards: 2, Workers: 4, Batched: batched,
			WALDir: t.TempDir(), SnapshotEvery: 2, Crashes: sched, Fsync: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Restarts != 2 || sched.Fired() != 2 {
			t.Fatalf("%s: restarts %d fired %d, want 2", label, res.Restarts, sched.Fired())
		}
		assertCrashEquivalence(t, label, base, res)
	}
}
