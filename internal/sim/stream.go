package sim

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/simclock"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/transport"
)

// RunTransportStream is the bounded-memory form of RunTransportWith: it
// replays the same trace through the same serving backends (single
// process or cluster, sequential or batched wire) without ever holding
// the population in memory. Traces are derived lazily from the
// generator's per-client seeds (trace.Stream), and an event-driven
// scheduler — a min-heap of 16-byte next-wakeup entries per worker —
// replaces the materialized per-user period walk: a client's trace is
// re-derived transiently for each period it is active in and discarded
// as soon as its events are replayed. Resident state is what a real
// fleet would hold anyway (one transport.Device per client, the server
// pool) plus the wake heap, so population size stops being a memory
// ceiling.
//
// Outcomes are pinned equal to RunTransportWith under the order-free
// serving contract (see RunTransport): per-device request sequences are
// identical — UserAt is bit-identical to Generate, so the derived
// timelines are too — and cross-device interleaving does not affect
// monetary results there. The stream differential tier asserts ledger,
// violation, per-client counter and campaign-spend equality on both
// wire modes, fault-free and under partition-free chaos.
//
// Beyond the materialized replay it adds two streaming-only options:
// Energy (per-device radios charge app/ad transfer bytes, mirroring
// sim.Run's energy model on the HTTP path) and Lean (drop O(population)
// result fields). Every run reports per-period client-observed load and
// latency quantiles in Result.StreamPeriods, which is how a
// million-device diurnal run surfaces its peak-hour tail.
func RunTransportStream(cfg Config, o TransportOpts) (*Result, error) {
	env, err := newStreamEnv(cfg, o)
	if err != nil {
		return nil, err
	}
	var back serving
	switch {
	case o.TargetURL != "":
		back, err = newTargetBackend(env)
	case o.Nodes > 0:
		back, err = newClusterBackend(env)
	default:
		back, err = newSingleBackend(env)
	}
	if err != nil {
		return nil, err
	}
	defer back.close()
	res, err := driveStream(env, back)
	if err != nil {
		return nil, err
	}
	if err := back.finish(res); err != nil {
		return nil, err
	}
	return res, nil
}

// newStreamEnv prepares a replayEnv whose trace side is lazy: no
// Population is materialized. One parallel init sweep derives each
// client once to record its first wake-up and intern its targeting
// hints (the server asks for hints every period, so those must not cost
// a trace derivation per ask); everything else is derived on demand.
func newStreamEnv(cfg Config, o TransportOpts) (*replayEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o.Plan != nil {
		if err := o.Plan.Validate(); err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.Population != nil:
		return nil, fmt.Errorf("sim: streaming replay derives traces lazily; a materialized Population wants RunTransportWith")
	case o.Flood != nil || len(o.ConfigEpochs) > 0:
		return nil, fmt.Errorf("sim: Flood and ConfigEpochs are materialized-replay options (RunTransportWith)")
	case o.TargetURL != "" && (o.Nodes > 0 || o.WALDir != "" || o.Crashes != nil || o.Plan != nil || len(o.Migrations) > 0):
		return nil, fmt.Errorf("sim: TargetURL drives an external deployment; in-process backend options do not apply")
	case o.TargetURL == "" && o.Nodes == 0 && o.Shards < 1:
		return nil, fmt.Errorf("sim: transport needs at least one shard, got %d", o.Shards)
	case o.Nodes < 0:
		return nil, fmt.Errorf("sim: negative node count %d", o.Nodes)
	case o.Nodes > 0 && o.Shards > 1:
		return nil, fmt.Errorf("sim: cluster nodes each run one shard; got shards=%d with nodes=%d", o.Shards, o.Nodes)
	case cfg.Core.Delivery != core.DeliverScheduled:
		return nil, fmt.Errorf("sim: transport replay supports scheduled delivery only")
	case cfg.ChurnProb > 0 || cfg.ReportLossProb > 0:
		return nil, fmt.Errorf("sim: transport replay does not support failure injection")
	case o.Crashes != nil && o.WALDir == "":
		return nil, fmt.Errorf("sim: a crash schedule requires a WAL directory")
	case len(o.Migrations) > 0 && o.Nodes == 0:
		return nil, fmt.Errorf("sim: migration steps require cluster mode (Nodes > 0)")
	}
	workers := o.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	st, err := trace.NewStream(cfg.TraceCfg)
	if err != nil {
		return nil, err
	}
	n := st.Users()
	if cfg.MaxUsers > 0 && cfg.MaxUsers < n {
		n = cfg.MaxUsers
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = trace.NewCatalog(trace.DefaultCatalog())
	}
	warmupEnd := simclock.Time(cfg.WarmupDays) * simclock.Day
	if warmupEnd > st.Span() {
		return nil, fmt.Errorf("sim: warm-up %d days exceeds trace span %v", cfg.WarmupDays, st.Span())
	}
	period := cfg.Core.Server.Period

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}

	env := &replayEnv{
		cfg: cfg, o: o, ids: ids, cat: cat,
		span: st.Span(), days: st.Days(),
		warmupEnd: warmupEnd, period: period, workers: workers, plan: o.Plan,
		stream: st, firstWake: make([]simclock.Time, n),
	}

	// Init sweep: derive each client once, transiently, to learn when it
	// first does anything and which ad categories target it. Hint slices
	// are interned — real populations share a handful of top-category
	// combinations — so the resident hint table is a uint32 per client
	// plus a few dozen small slices, not a map of slices per client.
	comboOf := make([]uint32, n)
	var mu sync.Mutex
	comboIdx := map[string]uint32{}
	var combos [][]trace.Category
	if err := eachDevice(workers, workers, func(w int) error {
		lo, hi := w*n/workers, (w+1)*n/workers
		for id := lo; id < hi; id++ {
			u := st.UserAt(id)
			tl := buildTimeline(u, cat, cfg.RefreshInterval)
			if len(tl) == 0 {
				env.firstWake[id] = -1
			} else {
				env.firstWake[id] = tl[0].at
			}
			top := topCategoriesOf(u, cat)
			var sb strings.Builder
			for _, c := range top {
				sb.WriteString(string(c))
				sb.WriteByte(0)
			}
			key := sb.String()
			mu.Lock()
			ci, ok := comboIdx[key]
			if !ok {
				ci = uint32(len(combos))
				comboIdx[key] = ci
				combos = append(combos, top)
			}
			mu.Unlock()
			comboOf[id] = ci
		}
		return nil
	}); err != nil {
		return nil, err
	}

	env.hints = func(id int) []trace.Category {
		if id < 0 || id >= n {
			return nil
		}
		return combos[comboOf[id]]
	}
	env.oracle = func(id int) []int {
		return trace.SlotsPerPeriod(st.UserAt(id), cat, cfg.RefreshInterval, period, env.span)
	}
	env.initMakePool()
	return env, nil
}

// driveStream is driveDevices with the period walk replaced by the
// event-driven scheduler. The client population is sharded into
// contiguous ranges, one per worker; each worker owns a WakeHeap whose
// entries are (next event time, client id). Within a period, a worker
// pops every client due before the boundary, re-derives that client's
// trace, replays its events up to the boundary, and pushes the client
// back with its next event time — so a device inactive for a period
// costs nothing and no timeline outlives its period.
func driveStream(env *replayEnv, back serving) (*Result, error) {
	cfg, o, plan, workers := env.cfg, env.o, env.plan, env.workers
	st := env.stream
	n := len(env.ids)
	baseURL := back.url()

	baseRT := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}
	defer baseRT.CloseIdleConnections()
	rt := http.RoundTripper(baseRT)
	if plan != nil {
		rt = plan.RoundTripper(baseRT)
	}
	hc := &http.Client{Transport: rt}

	clientReg := obs.NewRegistry()
	var tenantReg *tenant.Registry
	if len(o.Tenants) > 0 {
		var err error
		if tenantReg, err = tenant.NewRegistry(1, o.Tenants); err != nil {
			return nil, err
		}
	}
	devices := make([]*transport.Device, n)
	var meters []*radio.Radio // transport retry meters; chaos runs only
	if plan != nil {
		meters = make([]*radio.Radio, n)
	}
	var energy []*radio.Radio // app/ad transfer radios; Energy runs only
	if o.Energy {
		energy = make([]*radio.Radio, n)
	}
	for i := 0; i < n; i++ {
		opts := []transport.Option{transport.WithHTTPClient(hc), transport.WithRegistry(clientReg)}
		if plan != nil {
			meters[i] = radio.New(radio.Profile3G())
			opts = append(opts, transport.WithMeter(meters[i]))
		}
		if o.Batched {
			opts = append(opts, transport.WithBatching())
		}
		if o.BinaryBatch {
			opts = append(opts, transport.WithBinaryBatch())
		}
		if t := tenantReg.TenantOf(i); t != tenant.Legacy {
			opts = append(opts, transport.WithTenant(t))
		}
		d, err := transport.NewDevice(i, cfg.Core.CacheCap, baseURL, opts...)
		if err != nil {
			return nil, err
		}
		d.NoRescue = cfg.Core.NoRescue || cfg.Core.Mode == core.ModeOnDemand
		devices[i] = d
		if o.Energy {
			energy[i] = radio.New(cfg.Radio)
		}
	}

	// Seed each worker's heap with its range's first wake-ups. Clients
	// with empty traces never enter a heap: they still fetch bundles
	// (the server plans for every member) but cost nothing per period.
	if workers > n {
		workers = n
	}
	heaps := make([]simclock.WakeHeap, workers)
	for w := 0; w < workers; w++ {
		for id := w * n / workers; id < (w+1)*n/workers; id++ {
			if at := env.firstWake[id]; at >= 0 {
				heaps[w].Push(simclock.Wake{At: at, ID: id})
			}
		}
	}
	env.firstWake = nil // consumed; do not hold it for the whole run

	owner := func(at simclock.Time, kind string) radio.Owner {
		if at < env.warmupEnd {
			return "warmup"
		}
		return radio.Owner(kind)
	}

	coord := transport.NewCoordinator(baseURL, transport.WithHTTPClient(hc), transport.WithRegistry(clientReg))
	res := &Result{Mode: cfg.Core.Mode, Delivery: cfg.Core.Delivery, Users: n,
		Obs: back.registry(), ClientObs: clientReg}
	prefetching := cfg.Core.Mode != core.ModeOnDemand
	period := env.period

	periodsTotal := int(env.span / simclock.Time(period))
	res.StreamPeriods = make([]StreamPeriodStat, 0, periodsTotal)
	for pi := 0; pi <= periodsTotal; pi++ {
		now := simclock.Time(pi) * simclock.Time(period)
		if pi > 0 {
			prev := predict.PeriodOf(now-simclock.Time(period), period)
			if _, err := coord.EndPeriod(now, prev.Index, prev.OfDay, prev.Weekend); err != nil {
				return nil, err
			}
		}
		if pi == periodsTotal {
			break
		}
		selling := now >= env.warmupEnd
		p := predict.PeriodOf(now, period)
		wallStart := time.Now()
		lat := obs.NewRegistry().Histogram("stream_req_latency_ns")
		var ops atomic.Int64
		if selling && prefetching {
			reply, err := coord.StartPeriod(now, p.Index, p.OfDay, p.Weekend)
			if err != nil {
				return nil, err
			}
			res.SoldTotal += int64(reply.Sold)
			res.ReplicaTotal += int64(reply.Replicas)
			res.PlacedTotal += int64(reply.Placed)
			res.Periods++
			if err := eachDevice(n, workers, func(i int) error {
				t0 := time.Now()
				got, err := devices[i].FetchBundle(now)
				if err != nil {
					return err
				}
				lat.Observe(time.Since(t0).Nanoseconds())
				ops.Add(1)
				if energy != nil && got > 0 {
					energy[i].Transfer(now, int64(got)*cfg.AdBytes, owner(now, "ads"))
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		// Membership changes race this period's replay, exactly as on the
		// materialized path.
		var migErr error
		var migWg sync.WaitGroup
		if mig, ok := back.(migrator); ok {
			migWg.Add(1)
			go func(pi int) {
				defer migWg.Done()
				migErr = mig.migrate(pi)
			}(pi)
		}
		end := now + simclock.Time(period)
		var wakeups atomic.Int64
		if err := eachDevice(workers, workers, func(w int) error {
			h := &heaps[w]
			for h.Len() > 0 && h.Peek().At < end {
				wk := h.Pop()
				wakeups.Add(1)
				// Transient derivation: this client's trace exists only for
				// the duration of this wake-up.
				tl := buildTimeline(st.UserAt(wk.ID), env.cat, cfg.RefreshInterval)
				i := sort.Search(len(tl), func(i int) bool { return tl[i].at >= wk.At })
				d := devices[wk.ID]
				for ; i < len(tl) && tl[i].at < end; i++ {
					ev := tl[i]
					if !ev.slot {
						if energy != nil {
							energy[wk.ID].Transfer(ev.at, ev.bytes, owner(ev.at, "app"))
						}
						continue
					}
					t0 := time.Now()
					if !selling {
						if err := d.ObserveSlot(ev.at); err != nil {
							return err
						}
					} else {
						out, err := d.HandleSlot(ev.at, ev.cats)
						if err != nil {
							return err
						}
						if energy != nil {
							if out.Fetched {
								energy[wk.ID].Transfer(ev.at, cfg.AdBytes*int64(1+out.TopUpAds), owner(ev.at, "ads"))
							} else if out.CacheHit && cfg.ReportBytes > 0 {
								energy[wk.ID].Transfer(ev.at, cfg.ReportBytes, owner(ev.at, "ads"))
							}
						}
					}
					lat.Observe(time.Since(t0).Nanoseconds())
					ops.Add(1)
				}
				if i < len(tl) {
					h.Push(simclock.Wake{At: tl[i].at, ID: wk.ID})
				}
			}
			return nil
		}); err != nil {
			migWg.Wait()
			return nil, err
		}
		migWg.Wait()
		if migErr != nil {
			return nil, migErr
		}
		if o.Batched && selling {
			if err := eachDevice(n, workers, func(i int) error {
				devices[i].FlushDeferred(end)
				return nil
			}); err != nil {
				return nil, err
			}
		}
		res.StreamPeriods = append(res.StreamPeriods, StreamPeriodStat{
			Index:     pi,
			HourOfDay: int((now % simclock.Day) / simclock.Hour),
			Wakeups:   wakeups.Load(),
			Ops:       ops.Load(),
			WallNS:    time.Since(wallStart).Nanoseconds(),
			P50NS:     lat.Quantile(0.50),
			P95NS:     lat.Quantile(0.95),
			P99NS:     lat.Quantile(0.99),
		})
	}

	if plan != nil || o.Batched {
		if err := eachDevice(n, workers, func(i int) error {
			devices[i].FlushDeferred(env.span)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	res.Days = env.days - cfg.WarmupDays
	if !o.Lean {
		res.PerClient = make(map[int]client.Counters, n)
	}
	for i, d := range devices {
		c := d.Counters()
		if res.PerClient != nil {
			res.PerClient[i] = c
		}
		res.Counters.SlotsServed += c.SlotsServed
		res.Counters.CacheHits += c.CacheHits
		res.Counters.OnDemandFetches += c.OnDemandFetches
		res.Counters.BundleFetches += c.BundleFetches
		res.Counters.BundledAds += c.BundledAds
		res.Counters.DroppedOverflow += c.DroppedOverflow
		res.Counters.DroppedExpired += c.DroppedExpired
		res.Net.Add(d.Net())
	}
	res.Net.Add(coord.Net())
	if plan != nil {
		for i, d := range devices {
			meters[i].Flush()
			res.RetryEnergyJ += d.RetryEnergyJ()
		}
		res.FaultsInjected = plan.InjectedTotal()
	}
	if energy != nil {
		for _, r := range energy {
			r.Flush()
			adJ := r.UsageOf("ads").TotalJ()
			res.AdEnergyJ += adJ
			res.AppEnergyJ += r.UsageOf("app").TotalJ()
			if !o.Lean && res.Days > 0 {
				res.PerUserAdJPerDay.Add(adJ / float64(res.Days))
			}
		}
	}
	return res, nil
}
