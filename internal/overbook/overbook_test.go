package overbook

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func TestRequiredK(t *testing.T) {
	cases := []struct {
		q, target float64
		maxK      int
		want      int
	}{
		{0.1, 0.01, 10, 2},
		{0.1, 0.001, 10, 3},
		{0.5, 0.01, 10, 7},
		{0.5, 0.01, 3, 3},  // capped
		{0, 0.01, 10, 1},   // certain client
		{1, 0.01, 10, 10},  // hopeless client: cap
		{0.01, 0.5, 10, 1}, // single replica suffices
		{0.3, 0.05, 0, 1},  // bad cap clamps to 1
	}
	for _, c := range cases {
		if got := RequiredK(c.q, c.target, c.maxK); got != c.want {
			t.Errorf("RequiredK(%v,%v,%d)=%d want %d", c.q, c.target, c.maxK, got, c.want)
		}
	}
}

// Property: RequiredK is monotone — tighter targets and flakier clients
// need at least as many replicas, and the product constraint holds when
// uncapped.
func TestRequiredKProperty(t *testing.T) {
	f := func(qRaw, tRaw uint16) bool {
		q := 0.01 + 0.98*float64(qRaw)/65535
		target := 0.001 + 0.5*float64(tRaw)/65535
		k := RequiredK(q, target, 1000)
		if math.Pow(q, float64(k)) > target+1e-12 {
			return false
		}
		if k > 1 && math.Pow(q, float64(k-1)) <= target {
			return false // not minimal
		}
		if RequiredK(q, target/2, 1000) < k {
			return false // tighter target must not need fewer
		}
		if RequiredK(math.Min(q+0.01, 0.999), target, 1000) < k {
			return false // flakier client must not need fewer
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNoShowProduct(t *testing.T) {
	if got := NoShowProduct([]float64{0.5, 0.5, 0.2}); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if NoShowProduct(nil) != 1 {
		t.Fatal("empty product should be 1")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.TargetSLA = 0 },
		func(c *Config) { c.TargetSLA = 1 },
		func(c *Config) { c.MaxReplicas = 0 },
		func(c *Config) { c.FixedReplicas = -1 },
		func(c *Config) { c.AdmissionEpsilon = 0 },
		func(c *Config) { c.CacheCap = 0 },
		func(c *Config) { c.SpreadWeight = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAdmissionCount(t *testing.T) {
	cfg := DefaultConfig()
	cands := []Candidate{
		{Client: 0, PredictedSlots: 120, ExpectedSlots: 100},
		{Client: 1, PredictedSlots: 120, ExpectedSlots: 100},
		{Client: 2, PredictedSlots: 0, ExpectedSlots: 0}, // contributes nothing
	}
	n := AdmissionCount(cands, cfg)
	// mean 200, sd sqrt(200)=14.1, z(0.05)=-1.645: ~176.
	if n < 160 || n >= 200 {
		t.Fatalf("admission %d, want below mean 200 but near it", n)
	}
	// Looser epsilon sells more.
	loose := cfg
	loose.AdmissionEpsilon = 0.4
	if AdmissionCount(cands, loose) <= n {
		t.Fatal("looser admission should sell more")
	}
	if AdmissionCount(nil, cfg) != 0 {
		t.Fatal("no candidates should admit 0")
	}
	if AdmissionCount([]Candidate{{PredictedSlots: 0.01, ExpectedSlots: 0.01}}, cfg) != 0 {
		t.Fatal("tiny supply should clamp at 0, not go negative")
	}
}

func newPlanner(t *testing.T, cfg Config, cands []*Candidate) *Planner {
	t.Helper()
	p, err := NewPlanner(cfg, cands)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanOneStopsAtTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetSLA = 0.01
	cfg.MaxReplicas = 10
	cands := []*Candidate{
		{Client: 0, NoShowProb: 0.05, PredictedSlots: 10},
		{Client: 1, NoShowProb: 0.05, PredictedSlots: 10},
		{Client: 2, NoShowProb: 0.05, PredictedSlots: 10},
	}
	p := newPlanner(t, cfg, cands)
	clients, noShow := p.PlanOne()
	// One client at q=0.05 already beats 0.01? No: 0.05 > 0.01, needs 2.
	if len(clients) != 2 {
		t.Fatalf("clients %v", clients)
	}
	if math.Abs(noShow-0.0025) > 1e-12 {
		t.Fatalf("noShow %v", noShow)
	}
}

func TestPlanOnePrefersReliableClients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpreadWeight = 0
	cfg.TargetSLA = 0.2
	cands := []*Candidate{
		{Client: 0, NoShowProb: 0.9, PredictedSlots: 10},
		{Client: 1, NoShowProb: 0.1, PredictedSlots: 10},
		{Client: 2, NoShowProb: 0.5, PredictedSlots: 10},
	}
	p := newPlanner(t, cfg, cands)
	clients, _ := p.PlanOne()
	if len(clients) == 0 || clients[0] != 1 {
		t.Fatalf("should pick the most reliable first: %v", clients)
	}
}

func TestPlanFixedReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FixedReplicas = 3
	cfg.MaxReplicas = 10
	cands := []*Candidate{
		{Client: 0, NoShowProb: 0.0001, PredictedSlots: 10},
		{Client: 1, NoShowProb: 0.0001, PredictedSlots: 10},
		{Client: 2, NoShowProb: 0.0001, PredictedSlots: 10},
		{Client: 3, NoShowProb: 0.0001, PredictedSlots: 10},
	}
	p := newPlanner(t, cfg, cands)
	clients, _ := p.PlanOne()
	if len(clients) != 3 {
		t.Fatalf("fixed k=3 gave %d replicas", len(clients))
	}
}

func TestPlanRespectsCacheCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheCap = 2
	cfg.FixedReplicas = 1
	cands := []*Candidate{
		{Client: 0, NoShowProb: 0.01, PredictedSlots: 100},
	}
	p := newPlanner(t, cfg, cands)
	plan := p.Plan(5)
	placed := 0
	for _, c := range plan {
		if len(c) > 0 {
			placed++
		}
	}
	if placed != 2 {
		t.Fatalf("placed %d, cache cap is 2", placed)
	}
	if cands[0].Assigned != 2 {
		t.Fatalf("assigned %d", cands[0].Assigned)
	}
}

func TestPlanSpreadsLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FixedReplicas = 1
	cfg.SpreadWeight = 1.0
	cands := []*Candidate{
		{Client: 0, NoShowProb: 0.10, PredictedSlots: 5},
		{Client: 1, NoShowProb: 0.12, PredictedSlots: 5},
	}
	p := newPlanner(t, cfg, cands)
	p.Plan(10)
	// With spreading, the slightly-flakier client still gets real load.
	if cands[1].Assigned == 0 {
		t.Fatal("load not spread at all")
	}
	if cands[0].Assigned+cands[1].Assigned != 10 {
		t.Fatalf("assignments lost: %d + %d", cands[0].Assigned, cands[1].Assigned)
	}
}

func TestPlanExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheCap = 1
	cfg.FixedReplicas = 1
	p := newPlanner(t, cfg, []*Candidate{{Client: 0, NoShowProb: 0.1, PredictedSlots: 1}})
	plan := p.Plan(3)
	if plan[0] == nil || plan[1] != nil || plan[2] != nil {
		t.Fatalf("exhaustion handling wrong: %v", plan)
	}
	clients, noShow := p.PlanOne()
	if clients != nil || noShow != 1 {
		t.Fatalf("empty pool should return nil,1: %v,%v", clients, noShow)
	}
}

func TestMeanReplication(t *testing.T) {
	plan := [][]int{{1, 2}, {3}, nil, {4, 5, 6}}
	if got := MeanReplication(plan); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if MeanReplication(nil) != 0 || MeanReplication([][]int{nil}) != 0 {
		t.Fatal("degenerate plans should give 0")
	}
}

func TestNewPlannerRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxReplicas = 0
	if _, err := NewPlanner(cfg, nil); err == nil {
		t.Fatal("expected error")
	}
}

// Property: adaptive planning meets the target SLA whenever enough
// distinct low-q clients exist, and never assigns the same client twice
// to one impression.
func TestPlanOneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := simclock.NewRand(seed)
		n := int(nRaw%20) + 5
		cands := make([]*Candidate, n)
		for i := range cands {
			cands[i] = &Candidate{
				Client:         i,
				NoShowProb:     0.05 + 0.4*r.Float64(),
				PredictedSlots: 1 + 10*r.Float64(),
			}
		}
		cfg := DefaultConfig()
		cfg.TargetSLA = 0.01
		cfg.MaxReplicas = 6
		p, err := NewPlanner(cfg, cands)
		if err != nil {
			return false
		}
		clients, noShow := p.PlanOne()
		seen := map[int]bool{}
		for _, c := range clients {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		// q <= 0.45 each, so 6 replicas give <= 0.45^6 ~ 0.008 <= target;
		// the planner must have met the target or hit the cap trying.
		if noShow > cfg.TargetSLA && len(clients) < cfg.MaxReplicas {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
