// Package overbook implements the paper's overbooking model: the
// mechanism that reconciles unreliable client slot predictions with the
// hard obligations of sold impressions.
//
// A sold impression must be displayed before its deadline. If the server
// placed each ad on exactly one client, that client's no-show
// probability q̂ would translate directly into an SLA violation rate of
// q̂ — far too high. Instead, like an airline overbooking seats, the
// server (1) admits only as many impressions for sale as the population
// will almost surely supply slots for, and (2) replicates each sold ad
// across k clients so the probability that *none* of them shows it,
// ∏ᵢ q̂ᵢ, falls below the target SLA. The first replica to display claims
// the impression; the rest are cancelled at their next server sync, and
// any displays that race ahead of the cancellation are impressions given
// away free (revenue loss). Both failure modes are therefore tunable
// against each other through TargetSLA and MaxReplicas.
package overbook

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Config holds the overbooking policy parameters.
type Config struct {
	// TargetSLA is the acceptable per-impression no-show probability;
	// the paper operates at "negligible", i.e. well below 1%.
	TargetSLA float64

	// MaxReplicas caps the replication factor k regardless of target.
	MaxReplicas int

	// FixedReplicas, if positive, disables the adaptive choice and
	// replicates every impression exactly this many times (the k-sweep
	// baseline in figures F5/F6).
	FixedReplicas int

	// AdmissionEpsilon is the acceptable probability that aggregate
	// realized supply falls short of the impressions sold; admission
	// control sells mean - z(1-eps)*stddev of predicted aggregate supply.
	AdmissionEpsilon float64

	// CacheCap bounds how many replicas one client can hold per period
	// (its prefetch cache size).
	CacheCap int

	// SpreadWeight balances replica placement between reliability (low
	// q̂) and load-spreading across clients. Zero places purely by q̂.
	SpreadWeight float64
}

// DefaultConfig returns the operating point used in the evaluation.
func DefaultConfig() Config {
	return Config{
		// The per-impression replication target is modest because the
		// rescue path (adserver.RescueOpen) catches stragglers; pushing
		// the product much lower only multiplies racing duplicates.
		TargetSLA:        0.05,
		MaxReplicas:      3,
		AdmissionEpsilon: 0.05,
		CacheCap:         64,
		SpreadWeight:     0.3,
	}
}

// Validate checks the policy parameters.
func (c Config) Validate() error {
	switch {
	case c.TargetSLA <= 0 || c.TargetSLA >= 1:
		return fmt.Errorf("overbook: TargetSLA must be in (0,1), got %v", c.TargetSLA)
	case c.MaxReplicas < 1:
		return fmt.Errorf("overbook: MaxReplicas must be >= 1, got %d", c.MaxReplicas)
	case c.FixedReplicas < 0:
		return fmt.Errorf("overbook: FixedReplicas must be >= 0, got %d", c.FixedReplicas)
	case c.AdmissionEpsilon <= 0 || c.AdmissionEpsilon >= 1:
		return fmt.Errorf("overbook: AdmissionEpsilon must be in (0,1), got %v", c.AdmissionEpsilon)
	case c.CacheCap < 1:
		return fmt.Errorf("overbook: CacheCap must be >= 1, got %d", c.CacheCap)
	case c.SpreadWeight < 0:
		return fmt.Errorf("overbook: SpreadWeight must be >= 0, got %v", c.SpreadWeight)
	}
	return nil
}

// Candidate is one client able to hold replicas in the upcoming period.
type Candidate struct {
	Client int

	// PredictedSlots is the client's conservative cache-sizing forecast
	// (the percentile estimate); it bounds how many replicas the planner
	// spreads onto the client.
	PredictedSlots float64

	// ExpectedSlots is the unbiased supply forecast used by admission
	// control. Selling against the conservative estimate instead would
	// oversell by construction.
	ExpectedSlots float64

	// VarSlots is the estimated variance of the client's slot count;
	// zero means unknown (admission assumes Poisson dispersion).
	VarSlots float64

	// NoShowProb is q̂: the estimated probability the client displays
	// nothing during the period.
	NoShowProb float64

	// ShortfallProb, when non-nil, returns P(the client produces <= rank
	// slots this period): the rank-aware no-show probability of a
	// replica placed at cache position rank. Nil falls back to the
	// rank-independent NoShowProb (the binary model).
	ShortfallProb func(rank int) float64

	// Assigned counts replicas already placed on this client this
	// period (mutated by the planner).
	Assigned int
}

// nextQ returns the no-show probability of the next replica placed on
// this candidate, given how many it already holds.
func (c *Candidate) nextQ() float64 {
	if c.ShortfallProb != nil {
		return c.ShortfallProb(c.Assigned)
	}
	return c.NoShowProb
}

// RequiredK returns the smallest k with q^k <= target (homogeneous
// clients), capped at maxK. Clients with q=0 need k=1; q>=1 needs the cap.
func RequiredK(q, target float64, maxK int) int {
	if maxK < 1 {
		maxK = 1
	}
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return maxK
	}
	// The 1e-9 slack absorbs floating-point noise in the log ratio (e.g.
	// q=0.1, target=0.01 computes 2.0000000000000004).
	k := int(math.Ceil(math.Log(target)/math.Log(q) - 1e-9))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return k
}

// NoShowProduct returns ∏ q̂ᵢ over the chosen replica holders: the
// modeled probability the impression misses its deadline.
func NoShowProduct(qs []float64) float64 {
	p := 1.0
	for _, q := range qs {
		p *= q
	}
	return p
}

// AdmissionCount decides how many impressions to sell for the upcoming
// period given per-client forecasts. It models aggregate supply as a
// normal sum of independent per-client counts (mean = expected forecast,
// variance = max(mean, 1) per client — Poisson-like dispersion) and
// sells its AdmissionEpsilon-quantile, so supply falls short with
// probability at most ~epsilon.
func AdmissionCount(cands []Candidate, cfg Config) int {
	var mu, varSum float64
	for _, c := range cands {
		p := c.ExpectedSlots
		if p <= 0 {
			continue
		}
		mu += p
		v := c.VarSlots
		if v <= 0 {
			// Unknown dispersion: assume Poisson-like, floored at 1.
			v = p
			if v < 1 {
				v = 1
			}
		}
		varSum += v
	}
	if mu == 0 {
		return 0
	}
	z := metrics.NormInvCDF(cfg.AdmissionEpsilon) // negative for eps < 0.5
	n := int(math.Floor(mu + z*math.Sqrt(varSum)))
	if n < 0 {
		n = 0
	}
	return n
}

// Planner assigns replicas of sold impressions to candidate clients.
// It mutates the candidates' Assigned counters so repeated Plan calls in
// the same period respect cache capacity.
//
// Selection runs on a lazy-update priority queue: a candidate's score
// (rank-aware no-show probability plus load penalty) only ever grows as
// replicas land on it, so a popped entry whose cached score is stale is
// simply reinserted with its current score. This makes one assignment
// O(k log n) instead of re-sorting all n candidates per impression —
// the difference between seconds and minutes per round at fleet scale
// (see the X8 experiment).
type Planner struct {
	cfg Config
	h   candHeap
}

// candEntry caches a candidate's score at insertion time.
type candEntry struct {
	score float64
	c     *Candidate
}

type candHeap []candEntry

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].c.Client < h[j].c.Client
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(candEntry)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// score computes a candidate's current selection score.
func (p *Planner) score(c *Candidate, q float64) float64 {
	load := float64(c.Assigned) / math.Max(c.PredictedSlots, 1)
	return q + p.cfg.SpreadWeight*load
}

// NewPlanner validates the config and indexes the period's candidates.
func NewPlanner(cfg Config, cands []*Candidate) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Planner{cfg: cfg, h: make(candHeap, 0, len(cands))}
	for _, c := range cands {
		if c.PredictedSlots <= 0 {
			continue
		}
		q := c.nextQ()
		if q >= 1 {
			continue
		}
		p.h = append(p.h, candEntry{score: p.score(c, q), c: c})
	}
	heap.Init(&p.h)
	return p, nil
}

// PlanOne chooses the replica holders for a single impression: clients
// are ranked by q̂ plus a load-spreading penalty, and taken greedily
// until the no-show product reaches the target SLA (or the fixed k, or
// the replica cap, or capacity runs out). It returns the chosen client
// ids and the modeled no-show probability; an empty result means no
// capacity remained anywhere.
func (p *Planner) PlanOne() (clients []int, noShow float64) {
	wantK := p.cfg.MaxReplicas
	fixed := p.cfg.FixedReplicas > 0
	if fixed {
		wantK = p.cfg.FixedReplicas
	}

	noShow = 1.0
	// Selected candidates are held aside so the same client is never
	// chosen twice for one impression, then reinserted with refreshed
	// scores.
	var chosen []candEntry
	for p.h.Len() > 0 {
		if len(clients) >= wantK {
			break
		}
		if !fixed && len(clients) > 0 && noShow <= p.cfg.TargetSLA {
			break
		}
		e := heap.Pop(&p.h).(candEntry)
		c := e.c
		if c.Assigned >= p.cfg.CacheCap || c.PredictedSlots <= 0 {
			continue // permanently exhausted: drop from the pool
		}
		// A replica that is certain not to display (the client already
		// holds at least as many ads as it can possibly show)
		// contributes nothing; since q is monotone in rank, drop it.
		q := c.nextQ()
		if q >= 1 {
			continue
		}
		if cur := p.score(c, q); cur != e.score {
			// Stale entry: the candidate gained replicas since it was
			// scored. Reinsert at its current score and re-pop.
			heap.Push(&p.h, candEntry{score: cur, c: c})
			continue
		}
		clients = append(clients, c.Client)
		c.Assigned++
		noShow *= q
		chosen = append(chosen, e)
	}
	for _, e := range chosen {
		c := e.c
		if c.Assigned >= p.cfg.CacheCap {
			continue
		}
		q := c.nextQ()
		if q >= 1 {
			continue
		}
		heap.Push(&p.h, candEntry{score: p.score(c, q), c: c})
	}
	if len(clients) == 0 {
		return nil, 1
	}
	return clients, noShow
}

// Plan assigns n impressions and returns one client list per impression
// (in impression order). Impressions that could not be placed anywhere
// get a nil entry.
func (p *Planner) Plan(n int) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		clients, _ := p.PlanOne()
		out[i] = clients
	}
	return out
}

// MeanReplication returns the average replicas per placed impression of
// a Plan result, the x-axis of the F5/F6 figures.
func MeanReplication(plan [][]int) float64 {
	total, placed := 0, 0
	for _, c := range plan {
		if len(c) > 0 {
			total += len(c)
			placed++
		}
	}
	if placed == 0 {
		return 0
	}
	return float64(total) / float64(placed)
}
