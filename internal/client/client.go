// Package client implements the device-side runtime of the prefetching
// ad system: a deadline-aware ad cache, delivery bookkeeping (scheduled
// or piggybacked bundles), and per-device counters. The simulator (and
// the core library) drive a Device with slot and period events; the
// Device decides whether each ad slot is served from cache or must fall
// back to an energy-expensive on-demand fetch.
package client

import (
	"fmt"
	"sort"

	"repro/internal/auction"
	"repro/internal/simclock"
)

// CachedAd is one prefetched replica held by a device.
type CachedAd struct {
	ID       auction.ImpressionID
	Deadline simclock.Time

	// Tie orders ads that share a deadline. The server sets it to a
	// per-(client, impression) hash so different replicas of the same
	// impression sit at *uncorrelated* cache positions across clients —
	// with a global order (e.g. by ID) the last-sold impressions would
	// lose the race on every replica simultaneously and replication
	// would buy nothing.
	Tie uint64
}

// Cache is a deadline-ordered ad cache with bounded capacity. Ads are
// served earliest-deadline-first, which maximizes the number of
// impressions shown before expiry.
type Cache struct {
	cap     int
	entries []CachedAd // kept sorted by (Deadline, ID)
}

// NewCache creates a cache holding at most cap ads; cap must be >= 1.
func NewCache(cap int) (*Cache, error) {
	if cap < 1 {
		return nil, fmt.Errorf("client: cache capacity must be >= 1, got %d", cap)
	}
	return &Cache{cap: cap}, nil
}

// Len returns the number of cached ads.
func (c *Cache) Len() int { return len(c.entries) }

// Cap returns the capacity.
func (c *Cache) Cap() int { return c.cap }

// Add inserts ads, keeping deadline order. Ads whose impression is
// already cached are skipped (a device never holds two copies of the
// same impression). If the cache overflows, the farthest-deadline
// entries are dropped (they are the least urgent and the most likely to
// be displayable by a replica elsewhere). It returns the ads that were
// dropped.
func (c *Cache) Add(ads ...CachedAd) (dropped []CachedAd) {
	have := make(map[auction.ImpressionID]bool, len(c.entries))
	for _, e := range c.entries {
		have[e.ID] = true
	}
	for _, ad := range ads {
		if have[ad.ID] {
			continue
		}
		have[ad.ID] = true
		c.entries = append(c.entries, ad)
	}
	sort.Slice(c.entries, func(i, j int) bool {
		a, b := c.entries[i], c.entries[j]
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		if a.Tie != b.Tie {
			return a.Tie < b.Tie
		}
		return a.ID < b.ID
	})
	if len(c.entries) > c.cap {
		dropped = append(dropped, c.entries[c.cap:]...)
		c.entries = c.entries[:c.cap]
	}
	return dropped
}

// Take removes and returns the most urgent usable ad at instant now:
// not past its deadline and not known-cancelled per the callback.
// Expired entries encountered on the way are dropped; known-cancelled
// entries are dropped too (the server already has a claimant). ok is
// false if nothing usable remains.
func (c *Cache) Take(now simclock.Time, cancelled func(auction.ImpressionID) bool) (CachedAd, bool) {
	keep := c.entries[:0]
	var chosen CachedAd
	found := false
	for i, e := range c.entries {
		if found {
			keep = append(keep, e)
			continue
		}
		if now.After(e.Deadline) {
			continue // expired; the exchange sweep will record the violation
		}
		if cancelled != nil && cancelled(e.ID) {
			continue // claimed elsewhere and we know it
		}
		chosen = e
		found = true
		_ = i
	}
	c.entries = keep
	return chosen, found
}

// DropExpired removes entries past their deadline and returns how many
// were dropped.
func (c *Cache) DropExpired(now simclock.Time) int {
	keep := c.entries[:0]
	dropped := 0
	for _, e := range c.entries {
		if now.After(e.Deadline) {
			dropped++
			continue
		}
		keep = append(keep, e)
	}
	c.entries = keep
	return dropped
}

// Snapshot returns a copy of the cache contents, most urgent first.
func (c *Cache) Snapshot() []CachedAd {
	out := make([]CachedAd, len(c.entries))
	copy(out, c.entries)
	return out
}

// Counters aggregates one device's outcomes.
type Counters struct {
	SlotsServed     int64 // total ad slots that fired
	CacheHits       int64 // served from prefetched cache
	OnDemandFetches int64 // fallback network fetches
	BundleFetches   int64 // prefetch bundle downloads
	BundledAds      int64 // ads delivered in bundles
	DroppedOverflow int64 // ads dropped on cache overflow
	DroppedExpired  int64 // ads dropped expired in cache
}

// Sub returns the counter deltas c - o (for measuring a window).
func (ct Counters) Sub(o Counters) Counters {
	return Counters{
		SlotsServed:     ct.SlotsServed - o.SlotsServed,
		CacheHits:       ct.CacheHits - o.CacheHits,
		OnDemandFetches: ct.OnDemandFetches - o.OnDemandFetches,
		BundleFetches:   ct.BundleFetches - o.BundleFetches,
		BundledAds:      ct.BundledAds - o.BundledAds,
		DroppedOverflow: ct.DroppedOverflow - o.DroppedOverflow,
		DroppedExpired:  ct.DroppedExpired - o.DroppedExpired,
	}
}

// HitRate returns CacheHits / SlotsServed.
func (ct Counters) HitRate() float64 {
	if ct.SlotsServed == 0 {
		return 0
	}
	return float64(ct.CacheHits) / float64(ct.SlotsServed)
}

// Device is one simulated phone's ad runtime.
type Device struct {
	ID    int
	Cache *Cache

	// Pending holds a bundle assigned by the server but not yet
	// downloaded (piggyback delivery defers the download to the next
	// natural radio wake).
	Pending []CachedAd

	Counters Counters
}

// NewDevice creates a device with the given cache capacity.
func NewDevice(id, cacheCap int) (*Device, error) {
	c, err := NewCache(cacheCap)
	if err != nil {
		return nil, err
	}
	return &Device{ID: id, Cache: c}, nil
}

// Assign queues a bundle for delivery. With deliverNow, the bundle goes
// straight into the cache (scheduled delivery: the caller is
// responsible for charging the radio transfer); otherwise it waits in
// Pending for the next TakePending.
func (d *Device) Assign(ads []CachedAd, deliverNow bool) {
	if len(ads) == 0 {
		return
	}
	if deliverNow {
		d.ingest(ads)
		return
	}
	d.Pending = append(d.Pending, ads...)
}

// TakePending moves the pending bundle into the cache and returns how
// many ads were downloaded (0 if none were pending). The caller charges
// the corresponding radio transfer.
func (d *Device) TakePending() int {
	n := len(d.Pending)
	if n == 0 {
		return 0
	}
	d.ingest(d.Pending)
	d.Pending = nil
	return n
}

func (d *Device) ingest(ads []CachedAd) {
	dropped := d.Cache.Add(ads...)
	d.Counters.BundleFetches++
	d.Counters.BundledAds += int64(len(ads))
	d.Counters.DroppedOverflow += int64(len(dropped))
}

// ServeSlot serves one ad slot at instant now. It returns the cached ad
// displayed (hit=true), or hit=false meaning the caller must fall back
// to an on-demand fetch. Cancellation knowledge is queried through the
// callback (the server's claim set as this client last learned it).
func (d *Device) ServeSlot(now simclock.Time, cancelled func(auction.ImpressionID) bool) (CachedAd, bool) {
	d.Counters.SlotsServed++
	before := d.Cache.Len()
	ad, ok := d.Cache.Take(now, cancelled)
	if ok {
		d.Counters.CacheHits++
		d.Counters.DroppedExpired += int64(before - d.Cache.Len() - 1)
		return ad, true
	}
	d.Counters.OnDemandFetches++
	d.Counters.DroppedExpired += int64(before - d.Cache.Len())
	return CachedAd{}, false
}
