package client

import (
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/simclock"
)

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Fatal("cap 0 should error")
	}
	c, err := NewCache(3)
	if err != nil || c.Cap() != 3 || c.Len() != 0 {
		t.Fatalf("c=%+v err=%v", c, err)
	}
}

func TestCacheOrdersByDeadline(t *testing.T) {
	c, _ := NewCache(10)
	c.Add(
		CachedAd{ID: 1, Deadline: 3 * simclock.Hour},
		CachedAd{ID: 2, Deadline: simclock.Hour},
		CachedAd{ID: 3, Deadline: 2 * simclock.Hour},
	)
	snap := c.Snapshot()
	if snap[0].ID != 2 || snap[1].ID != 3 || snap[2].ID != 1 {
		t.Fatalf("order wrong: %+v", snap)
	}
}

func TestCacheOverflowDropsFarthest(t *testing.T) {
	c, _ := NewCache(2)
	dropped := c.Add(
		CachedAd{ID: 1, Deadline: simclock.Hour},
		CachedAd{ID: 2, Deadline: 3 * simclock.Hour},
		CachedAd{ID: 3, Deadline: 2 * simclock.Hour},
	)
	if len(dropped) != 1 || dropped[0].ID != 2 {
		t.Fatalf("dropped %+v, want the farthest deadline (id 2)", dropped)
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestCacheTakeEDF(t *testing.T) {
	c, _ := NewCache(10)
	c.Add(
		CachedAd{ID: 1, Deadline: 2 * simclock.Hour},
		CachedAd{ID: 2, Deadline: simclock.Hour},
	)
	ad, ok := c.Take(0, nil)
	if !ok || ad.ID != 2 {
		t.Fatalf("EDF violated: %+v ok=%v", ad, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestCacheTakeSkipsExpiredAndCancelled(t *testing.T) {
	c, _ := NewCache(10)
	c.Add(
		CachedAd{ID: 1, Deadline: simclock.Hour},     // will be expired
		CachedAd{ID: 2, Deadline: 3 * simclock.Hour}, // cancelled
		CachedAd{ID: 3, Deadline: 4 * simclock.Hour}, // usable
		CachedAd{ID: 4, Deadline: 5 * simclock.Hour}, // stays
	)
	cancelled := func(id auction.ImpressionID) bool { return id == 2 }
	ad, ok := c.Take(2*simclock.Hour, cancelled)
	if !ok || ad.ID != 3 {
		t.Fatalf("got %+v ok=%v", ad, ok)
	}
	// 1 and 2 dropped on the way, 3 taken, 4 remains.
	if c.Len() != 1 || c.Snapshot()[0].ID != 4 {
		t.Fatalf("remaining %+v", c.Snapshot())
	}
}

func TestCacheTakeExactDeadlineUsable(t *testing.T) {
	c, _ := NewCache(10)
	c.Add(CachedAd{ID: 1, Deadline: simclock.Hour})
	if _, ok := c.Take(simclock.Hour, nil); !ok {
		t.Fatal("ad at exactly its deadline should still display")
	}
}

func TestCacheTakeEmpty(t *testing.T) {
	c, _ := NewCache(10)
	if _, ok := c.Take(0, nil); ok {
		t.Fatal("empty cache returned an ad")
	}
}

func TestDropExpired(t *testing.T) {
	c, _ := NewCache(10)
	c.Add(
		CachedAd{ID: 1, Deadline: simclock.Hour},
		CachedAd{ID: 2, Deadline: 3 * simclock.Hour},
	)
	if n := c.DropExpired(2 * simclock.Hour); n != 1 {
		t.Fatalf("dropped %d", n)
	}
	if c.Len() != 1 || c.Snapshot()[0].ID != 2 {
		t.Fatalf("remaining %+v", c.Snapshot())
	}
}

func TestDeviceScheduledDelivery(t *testing.T) {
	d, err := NewDevice(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Assign([]CachedAd{{ID: 1, Deadline: simclock.Hour}}, true)
	if d.Cache.Len() != 1 || len(d.Pending) != 0 {
		t.Fatalf("scheduled delivery should ingest immediately: cache=%d pending=%d",
			d.Cache.Len(), len(d.Pending))
	}
	if d.Counters.BundleFetches != 1 || d.Counters.BundledAds != 1 {
		t.Fatalf("counters %+v", d.Counters)
	}
}

func TestDevicePiggybackDelivery(t *testing.T) {
	d, _ := NewDevice(7, 10)
	d.Assign([]CachedAd{{ID: 1, Deadline: simclock.Hour}, {ID: 2, Deadline: simclock.Hour}}, false)
	if d.Cache.Len() != 0 || len(d.Pending) != 2 {
		t.Fatal("piggyback delivery should defer")
	}
	if n := d.TakePending(); n != 2 {
		t.Fatalf("TakePending=%d", n)
	}
	if d.Cache.Len() != 2 || len(d.Pending) != 0 {
		t.Fatal("pending not ingested")
	}
	if n := d.TakePending(); n != 0 {
		t.Fatalf("second TakePending=%d", n)
	}
	d.Assign(nil, false)
	if len(d.Pending) != 0 {
		t.Fatal("assigning empty bundle should be a no-op")
	}
}

func TestDeviceServeSlot(t *testing.T) {
	d, _ := NewDevice(1, 10)
	d.Assign([]CachedAd{{ID: 5, Deadline: simclock.Hour}}, true)
	ad, hit := d.ServeSlot(simclock.At(0), nil)
	if !hit || ad.ID != 5 {
		t.Fatalf("ad=%+v hit=%v", ad, hit)
	}
	if _, hit := d.ServeSlot(simclock.At(0), nil); hit {
		t.Fatal("empty cache should miss")
	}
	ct := d.Counters
	if ct.SlotsServed != 2 || ct.CacheHits != 1 || ct.OnDemandFetches != 1 {
		t.Fatalf("counters %+v", ct)
	}
	if ct.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", ct.HitRate())
	}
	var zero Counters
	if zero.HitRate() != 0 {
		t.Fatal("zero counters hit rate should be 0")
	}
}

func TestDeviceServeSlotCountsExpiredDrops(t *testing.T) {
	d, _ := NewDevice(1, 10)
	d.Assign([]CachedAd{
		{ID: 1, Deadline: simclock.Hour},
		{ID: 2, Deadline: simclock.Hour},
		{ID: 3, Deadline: 10 * simclock.Hour},
	}, true)
	ad, hit := d.ServeSlot(5*simclock.Hour, nil)
	if !hit || ad.ID != 3 {
		t.Fatalf("ad=%+v", ad)
	}
	if d.Counters.DroppedExpired != 2 {
		t.Fatalf("dropped expired %d", d.Counters.DroppedExpired)
	}
	// All-expired path: misses and counts the drops.
	d2, _ := NewDevice(2, 10)
	d2.Assign([]CachedAd{{ID: 1, Deadline: simclock.Hour}}, true)
	if _, hit := d2.ServeSlot(5*simclock.Hour, nil); hit {
		t.Fatal("expired-only cache should miss")
	}
	if d2.Counters.DroppedExpired != 1 {
		t.Fatalf("dropped %d", d2.Counters.DroppedExpired)
	}
}

// Property: the cache never exceeds capacity, never returns expired or
// cancelled ads, and conserves entries (taken + dropped + remaining =
// added).
func TestCacheInvariantProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		r := simclock.NewRand(seed)
		c, err := NewCache(5)
		if err != nil {
			return false
		}
		added, taken, droppedOverflow, droppedOther := 0, 0, 0, 0
		now := simclock.Time(0)
		nextID := auction.ImpressionID(1)
		for i := 0; i < int(ops); i++ {
			now = now + simclock.Time(r.Int63n(int64(simclock.Hour)))
			if r.Bernoulli(0.6) {
				n := r.Intn(3) + 1
				ads := make([]CachedAd, n)
				for j := range ads {
					ads[j] = CachedAd{
						ID:       nextID,
						Deadline: now + simclock.Time(r.Int63n(int64(4*simclock.Hour))),
					}
					nextID++
				}
				added += n
				droppedOverflow += len(c.Add(ads...))
			} else {
				before := c.Len()
				ad, ok := c.Take(now, func(id auction.ImpressionID) bool { return id%7 == 0 })
				after := c.Len()
				if ok {
					taken++
					if now.After(ad.Deadline) || ad.ID%7 == 0 {
						return false
					}
					droppedOther += before - after - 1
				} else {
					droppedOther += before - after
				}
			}
			if c.Len() > 5 {
				return false
			}
		}
		return added == taken+droppedOverflow+droppedOther+c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
