package auction

import (
	"fmt"
	"sort"
)

// Live shard migration (see internal/transport and internal/cluster)
// hands a client's impressions from one exchange to another. The two
// exchanges run the same campaign set but account independently, so a
// transfer must also move each open impression's budget commitment:
// the source releases it (as RecordExpiry would) and the target assumes
// it (as sellOne would), keeping expiry and billing arithmetic correct
// on whichever side the impression finally settles. Ledger history
// (Sold, PotentialUSD) stays on the seller; Billed/Free/Violation
// entries land wherever those events fire — every accounting observable
// is summed across exchanges, so totals are unchanged by a handoff.

// ImpressionTransfer is the wire form of one client's impressions in
// flight between exchanges: the still-open obligations plus the settled
// records that value late duplicate displays.
type ImpressionTransfer struct {
	Open    []Impression        `json:"open,omitempty"`
	Settled []SettledImpression `json:"settled,omitempty"`
}

// ExtractImpressions removes the given impressions from the exchange
// and returns them in transfer form. Open impressions release their
// campaign commitment (and goal slot) on the way out; settled ones move
// their price record. Unknown ids error — the caller derives the id set
// from the ad server's books, so a miss is state corruption, not a
// benign race.
func (e *Exchange) ExtractImpressions(open, settled []ImpressionID) (ImpressionTransfer, error) {
	var tr ImpressionTransfer
	sortedIDs := append([]ImpressionID(nil), open...)
	sort.Slice(sortedIDs, func(i, j int) bool { return sortedIDs[i] < sortedIDs[j] })
	for _, id := range sortedIDs {
		imp, ok := e.open[id]
		if !ok {
			return ImpressionTransfer{}, fmt.Errorf("auction: extract: impression %d not open", id)
		}
		s := e.states[imp.Campaign]
		s.committedUSD -= imp.PriceUSD
		if s.c.Goal > 0 {
			s.soldCount--
		}
		tr.Open = append(tr.Open, *imp)
		delete(e.open, id)
		e.openCnt[e.TenantOfImpression(id)]--
	}
	sortedIDs = append(sortedIDs[:0], settled...)
	sort.Slice(sortedIDs, func(i, j int) bool { return sortedIDs[i] < sortedIDs[j] })
	for _, id := range sortedIDs {
		if !e.settled[id] {
			return ImpressionTransfer{}, fmt.Errorf("auction: extract: impression %d not settled", id)
		}
		tr.Settled = append(tr.Settled, SettledImpression{ID: id, PriceUSD: e.settledPrice[id]})
		delete(e.settled, id)
		delete(e.settledPrice, id)
	}
	return tr, nil
}

// AbsorbImpressions adopts a transfer extracted from another exchange:
// open impressions re-commit their price against the local campaign
// (and re-occupy its goal slot), settled records resume valuing late
// duplicates. Campaign references must resolve locally and ids must not
// collide with existing books — both would mean the fleet's
// impression-id namespacing is broken.
func (e *Exchange) AbsorbImpressions(tr ImpressionTransfer) error {
	for _, imp := range tr.Open {
		s, ok := e.states[imp.Campaign]
		if !ok {
			return fmt.Errorf("auction: absorb: impression %d references unknown campaign %d", imp.ID, imp.Campaign)
		}
		if _, dup := e.open[imp.ID]; dup || e.settled[imp.ID] {
			return fmt.Errorf("auction: absorb: impression id %d already known", imp.ID)
		}
		s.committedUSD += imp.PriceUSD
		if s.c.Goal > 0 {
			s.soldCount++
		}
		stored := imp
		e.open[imp.ID] = &stored
		e.openCnt[e.TenantOfImpression(imp.ID)]++
	}
	for _, st := range tr.Settled {
		if _, dup := e.open[st.ID]; dup || e.settled[st.ID] {
			return fmt.Errorf("auction: absorb: settled impression id %d already known", st.ID)
		}
		e.settled[st.ID] = true
		if e.settledPrice == nil {
			e.settledPrice = make(map[ImpressionID]float64)
		}
		e.settledPrice[st.ID] = st.PriceUSD
	}
	return nil
}

// StatusOf reports whether an impression is currently open or settled
// on this exchange, so migration code can classify a moved book entry
// without reaching into exchange internals. Both false means the
// exchange no longer tracks the id (expired, or billed before the
// settled window existed).
func (e *Exchange) StatusOf(id ImpressionID) (open, settled bool) {
	_, open = e.open[id]
	return open, e.settled[id]
}

// SeedImpressionIDs moves the impression-id cursor forward to at least
// base, so exchanges on different nodes mint from disjoint namespaces
// and a migrated impression can never collide with a locally sold one.
// Never moves the cursor backward; call before the first sale (and
// before WAL recovery replays sales, so replayed executions mint the
// same ids the live ones did).
func (e *Exchange) SeedImpressionIDs(base ImpressionID) {
	if e.nextID < base {
		e.nextID = base
	}
	// Tenant cursors carry the same node offset inside their own high
	// namespace, so two nodes' same-tenant sales stay disjoint too.
	for i, t := range e.tenants {
		if floor := ImpressionID(i+1)<<tenantIDShift + base; e.tenantNext[t] < floor {
			e.tenantNext[t] = floor
		}
	}
}
