package auction

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

func twoCampaigns() []Campaign {
	return []Campaign{
		{ID: 0, Name: "hi", BidCPM: 2000, BudgetUSD: 1000, Deadline: time.Hour}, // $2/imp
		{ID: 1, Name: "lo", BidCPM: 1000, BudgetUSD: 1000, Deadline: time.Hour}, // $1/imp
	}
}

func TestSecondPricePricing(t *testing.T) {
	e, err := NewExchange(twoCampaigns(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	sold := e.SellSlots(0, 1, nil, 0)
	if len(sold) != 1 {
		t.Fatalf("sold %d", len(sold))
	}
	imp := sold[0]
	if imp.Campaign != 0 {
		t.Fatalf("winner %d, want highest bidder 0", imp.Campaign)
	}
	if imp.PriceUSD != 1.0 {
		t.Fatalf("price %v, want runner-up bid 1.0", imp.PriceUSD)
	}
	if imp.Deadline != simclock.Time(time.Hour) {
		t.Fatalf("deadline %v", imp.Deadline)
	}
}

func TestReservePriceFloorsAndFilters(t *testing.T) {
	e, err := NewExchange([]Campaign{
		{ID: 0, BidCPM: 2000, BudgetUSD: 100, Deadline: time.Hour},
	}, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	sold := e.SellSlots(0, 1, nil, 0)
	if len(sold) != 1 || sold[0].PriceUSD != 0.50 {
		t.Fatalf("lone bidder should pay reserve: %+v", sold)
	}
	// A bidder below reserve cannot buy.
	e2, _ := NewExchange([]Campaign{{ID: 0, BidCPM: 100, BudgetUSD: 100}}, 0.50)
	if sold := e2.SellSlots(0, 1, nil, 0); len(sold) != 0 {
		t.Fatalf("below-reserve bid bought a slot: %+v", sold)
	}
}

func TestBudgetExhaustionStopsSales(t *testing.T) {
	e, err := NewExchange([]Campaign{
		{ID: 0, BidCPM: 1000, BudgetUSD: 2.5, Deadline: time.Hour}, // $1/imp, budget 2.5
	}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sold := e.SellSlots(0, 10, nil, 0)
	if len(sold) != 2 {
		t.Fatalf("sold %d impressions on a $2.5 budget at $1 reserve", len(sold))
	}
}

func TestGoalCapsSales(t *testing.T) {
	e, err := NewExchange([]Campaign{
		{ID: 0, BidCPM: 1000, BudgetUSD: 1000, Goal: 3, Deadline: time.Hour},
	}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sold := e.SellSlots(0, 10, nil, 0); len(sold) != 3 {
		t.Fatalf("sold %d, want goal 3", len(sold))
	}
	// Expiring releases the slot back to the goal.
	e.RecordExpiry(1)
	if sold := e.SellSlots(simclock.Hour*2, 10, nil, 0); len(sold) != 1 {
		t.Fatalf("after expiry, sold %d, want 1", len(sold))
	}
}

func TestTargeting(t *testing.T) {
	e, err := NewExchange([]Campaign{
		{ID: 0, BidCPM: 5000, BudgetUSD: 100, Categories: []trace.Category{trace.CatGame}, Deadline: time.Hour},
		{ID: 1, BidCPM: 1000, BudgetUSD: 100, Deadline: time.Hour},
	}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Untargetable inventory: only the run-of-network campaign buys.
	sold := e.SellSlots(0, 1, nil, 0)
	if len(sold) != 1 || sold[0].Campaign != 1 {
		t.Fatalf("untargetable slot: %+v", sold)
	}
	// Game inventory: the targeted campaign wins and pays the runner-up.
	sold = e.SellSlots(0, 1, []trace.Category{trace.CatGame}, 0)
	if len(sold) != 1 || sold[0].Campaign != 0 || sold[0].PriceUSD != 1.0 {
		t.Fatalf("game slot: %+v", sold)
	}
	// Social inventory: targeted campaign ineligible.
	sold = e.SellSlots(0, 1, []trace.Category{trace.CatSocial}, 0)
	if len(sold) != 1 || sold[0].Campaign != 1 {
		t.Fatalf("social slot: %+v", sold)
	}
}

func TestDeadlineCap(t *testing.T) {
	e, _ := NewExchange([]Campaign{
		{ID: 0, BidCPM: 1000, BudgetUSD: 100, Deadline: 24 * time.Hour},
	}, 0.1)
	sold := e.SellSlots(0, 1, nil, time.Hour)
	if sold[0].Deadline != simclock.Time(time.Hour) {
		t.Fatalf("cap not applied: %v", sold[0].Deadline)
	}
	// Campaigns with zero deadline accept the cap as their deadline.
	e2, _ := NewExchange([]Campaign{{ID: 0, BidCPM: 1000, BudgetUSD: 100}}, 0.1)
	sold = e2.SellSlots(0, 1, nil, 2*time.Hour)
	if sold[0].Deadline != simclock.Time(2*time.Hour) {
		t.Fatalf("zero deadline should adopt cap: %v", sold[0].Deadline)
	}
}

func TestBillingLifecycle(t *testing.T) {
	e, _ := NewExchange(twoCampaigns(), 0.1)
	sold := e.SellSlots(0, 2, nil, 0)
	if len(sold) != 2 {
		t.Fatalf("sold %d", len(sold))
	}
	// First display in time: billed.
	if err := e.RecordDisplay(sold[0].ID, simclock.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	l := e.Ledger()
	if l.Billed != 1 || math.Abs(l.BilledUSD-sold[0].PriceUSD) > 1e-12 {
		t.Fatalf("ledger after billing: %+v", l)
	}
	// Duplicate display of the same impression: free show, same value.
	if err := e.RecordDisplay(sold[0].ID, simclock.At(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	l = e.Ledger()
	if l.FreeShows != 1 || math.Abs(l.FreeUSD-sold[0].PriceUSD) > 1e-12 {
		t.Fatalf("duplicate not counted free: %+v", l)
	}
	if math.Abs(l.RevenueLossFrac()-1.0) > 1e-12 {
		t.Fatalf("revenue loss frac: %v", l.RevenueLossFrac())
	}
	// Second impression expires unseen: violation, budget released.
	e.RecordExpiry(sold[1].ID)
	l = e.Ledger()
	if l.Violations != 1 || math.Abs(l.ViolatedUSD-sold[1].PriceUSD) > 1e-12 {
		t.Fatalf("violation not recorded: %+v", l)
	}
	if got := l.ViolationRate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("violation rate %v", got)
	}
	if e.Open() != 0 {
		t.Fatalf("open=%d", e.Open())
	}
	billed, committed, err := e.CampaignSpend(0)
	if err != nil {
		t.Fatal(err)
	}
	// Winner was campaign 0 both times (budget deep enough); one billed,
	// one released.
	if billed <= 0 || committed < billed-1e-9 {
		t.Fatalf("spend: billed=%v committed=%v", billed, committed)
	}
}

func TestLateDisplayIsFreeNotBilled(t *testing.T) {
	e, _ := NewExchange([]Campaign{
		{ID: 0, BidCPM: 1000, BudgetUSD: 100, Deadline: time.Minute},
	}, 0.1)
	sold := e.SellSlots(0, 1, nil, 0)
	if err := e.RecordDisplay(sold[0].ID, simclock.At(time.Hour)); err != nil {
		t.Fatal(err)
	}
	l := e.Ledger()
	if l.Billed != 0 || l.FreeShows != 1 {
		t.Fatalf("late display: %+v", l)
	}
	// Sweep then settles the violation.
	e.RecordExpiry(sold[0].ID)
	if e.Ledger().Violations != 1 {
		t.Fatal("expiry after late display should record violation")
	}
	// A further duplicate display after settlement is still free.
	if err := e.RecordDisplay(sold[0].ID, simclock.At(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if e.Ledger().FreeShows != 2 {
		t.Fatalf("free shows %d", e.Ledger().FreeShows)
	}
}

func TestRecordDisplayUnknown(t *testing.T) {
	e, _ := NewExchange(twoCampaigns(), 0.1)
	if err := e.RecordDisplay(999, 0); err == nil {
		t.Fatal("unknown impression should error")
	}
}

func TestRecordExpiryIdempotent(t *testing.T) {
	e, _ := NewExchange(twoCampaigns(), 0.1)
	sold := e.SellSlots(0, 1, nil, 0)
	e.RecordExpiry(sold[0].ID)
	e.RecordExpiry(sold[0].ID)
	if e.Ledger().Violations != 1 {
		t.Fatalf("violations %d", e.Ledger().Violations)
	}
}

func TestNewExchangeValidation(t *testing.T) {
	if _, err := NewExchange([]Campaign{{ID: 0}, {ID: 0}}, 0); err == nil {
		t.Fatal("duplicate ids should error")
	}
	if _, err := NewExchange([]Campaign{{ID: 0, BidCPM: -1}}, 0); err == nil {
		t.Fatal("negative bid should error")
	}
	if _, err := NewExchange(nil, -1); err == nil {
		t.Fatal("negative reserve should error")
	}
	if _, err := e0(); err != nil {
		t.Fatal(err)
	}
}

func e0() (*Exchange, error) { return NewExchange(nil, 0) }

func TestEmptyExchangeSellsNothing(t *testing.T) {
	e, _ := e0()
	if sold := e.SellSlots(0, 5, nil, 0); len(sold) != 0 {
		t.Fatalf("sold %d from empty exchange", len(sold))
	}
}

func TestCampaignQueriesUnknown(t *testing.T) {
	e, _ := e0()
	if _, _, err := e.CampaignSpend(7); err == nil {
		t.Fatal("unknown campaign spend should error")
	}
	if _, err := e.CampaignSold(7); err == nil {
		t.Fatal("unknown campaign sold should error")
	}
}

// Property: second-price invariant — price never exceeds the winner's
// bid and never falls below reserve; committed spend never exceeds
// budget; ledger conservation Sold = Billed + Violations + Open.
func TestAuctionInvariantsProperty(t *testing.T) {
	f := func(seed int64, nSlots uint8) bool {
		r := simclock.NewRand(seed)
		d := DefaultDemand()
		d.Campaigns = 8
		d.BudgetImpressions = int64(r.Intn(50) + 1)
		d.Deadline = time.Hour
		camps := d.Generate(r)
		e, err := NewExchange(camps, 0.05)
		if err != nil {
			return false
		}
		byID := map[CampaignID]Campaign{}
		for _, c := range camps {
			byID[c.ID] = c
		}
		sold := e.SellSlots(0, int(nSlots), nil, 0)
		for _, imp := range sold {
			c := byID[imp.Campaign]
			if imp.PriceUSD > c.perImp()+1e-12 || imp.PriceUSD < 0.05-1e-12 {
				return false
			}
		}
		// Randomly display or expire.
		for _, imp := range sold {
			if r.Bernoulli(0.6) {
				if err := e.RecordDisplay(imp.ID, imp.SoldAt.Add(time.Minute)); err != nil {
					return false
				}
			} else {
				e.RecordExpiry(imp.ID)
			}
		}
		l := e.Ledger()
		if l.Sold != l.Billed+l.Violations+int64(e.Open()) {
			return false
		}
		for _, c := range camps {
			billed, committed, err := e.CampaignSpend(c.ID)
			if err != nil || billed > c.BudgetUSD+1e-9 || committed > c.BudgetUSD+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandGenerate(t *testing.T) {
	r := simclock.NewRand(1)
	d := DefaultDemand()
	camps := d.Generate(r)
	if len(camps) != d.Campaigns {
		t.Fatalf("len=%d", len(camps))
	}
	targeted := 0
	for i, c := range camps {
		if c.ID != CampaignID(i) || c.BidCPM <= 0 || c.BudgetUSD <= 0 {
			t.Fatalf("bad campaign %+v", c)
		}
		if len(c.Categories) > 0 {
			targeted++
		}
	}
	if targeted == 0 || targeted == len(camps) {
		t.Fatalf("targeting mix degenerate: %d/%d", targeted, len(camps))
	}
	// Deterministic.
	camps2 := d.Generate(simclock.NewRand(1))
	if camps[0].BidCPM != camps2[0].BidCPM {
		t.Fatal("demand generation not deterministic")
	}
}

func TestSellSlotsFiltered(t *testing.T) {
	e, err := NewExchange(twoCampaigns(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Filter out the high bidder: the runner-up wins at reserve.
	sold := e.SellSlotsFiltered(0, 1, nil, 0, func(id CampaignID) bool { return id != 0 })
	if len(sold) != 1 || sold[0].Campaign != 1 {
		t.Fatalf("sold %+v", sold)
	}
	if sold[0].PriceUSD != 0.1 {
		t.Fatalf("price %v want reserve", sold[0].PriceUSD)
	}
	// Filter out everyone: no sale.
	if sold := e.SellSlotsFiltered(0, 1, nil, 0, func(CampaignID) bool { return false }); len(sold) != 0 {
		t.Fatalf("sold %+v", sold)
	}
}

func TestCampaignAccessors(t *testing.T) {
	e, _ := NewExchange([]Campaign{
		{ID: 3, Name: "x", BidCPM: 1000, BudgetUSD: 10, FreqCapPerUserDay: 2},
	}, 0)
	c, ok := e.Campaign(3)
	if !ok || c.Name != "x" || c.FreqCapPerUserDay != 2 {
		t.Fatalf("campaign %+v ok=%v", c, ok)
	}
	if _, ok := e.Campaign(99); ok {
		t.Fatal("unknown campaign found")
	}
	sold := e.SellSlots(0, 1, nil, time.Hour)
	got, ok := e.CampaignOf(sold[0].ID)
	if !ok || got != 3 {
		t.Fatalf("CampaignOf %v ok=%v", got, ok)
	}
	e.RecordExpiry(sold[0].ID)
	if _, ok := e.CampaignOf(sold[0].ID); ok {
		t.Fatal("settled impression should not resolve")
	}
}
