package auction

import "sort"

// Impression-id namespaces: each named tenant mints ids from a disjoint
// high range, (tenantIndex+1)<<52 upward, so the tenant of any open or
// settled impression can be recovered from its id alone — including
// after snapshot restore or cross-node migration. The shift composes
// with per-node id bases ((nodeIdx+1)<<40): node bits occupy 40–51 and
// per-period sequence numbers stay far below 2^40, so the two
// namespaces never collide. The legacy tenant ("") keeps the original
// small dense ids, which keeps every pre-tenant WAL, snapshot, and
// golden byte-stable.
const tenantIDShift = 52

// initTenants derives the tenant set from the campaign list: the sorted
// distinct non-empty Campaign.Tenant values. Cursors, per-tenant
// ledgers, and open counts start empty; Restore overlays snapshot state
// afterwards.
func (e *Exchange) initTenants() {
	set := make(map[string]bool)
	for _, id := range e.order {
		if t := e.states[id].c.Tenant; t != "" {
			set[t] = true
		}
	}
	e.tenants = e.tenants[:0]
	for t := range set {
		e.tenants = append(e.tenants, t)
	}
	sort.Strings(e.tenants)
	e.tenantNext = make(map[string]ImpressionID, len(e.tenants))
	e.tenantLedger = make(map[string]*Ledger, len(e.tenants))
	for i, t := range e.tenants {
		e.tenantNext[t] = ImpressionID(i+1) << tenantIDShift
		e.tenantLedger[t] = &Ledger{}
	}
	e.openCnt = make(map[string]int, len(e.tenants)+1)
}

// mintID allocates the next impression id in the tenant's namespace.
func (e *Exchange) mintID(tenant string) ImpressionID {
	if tenant == "" {
		e.nextID++
		return e.nextID
	}
	e.tenantNext[tenant]++
	return e.tenantNext[tenant]
}

// TenantOfImpression recovers the owning tenant from an impression id's
// namespace bits ("" for legacy ids).
func (e *Exchange) TenantOfImpression(id ImpressionID) string {
	idx := int(id >> tenantIDShift)
	if idx <= 0 || idx > len(e.tenants) {
		return ""
	}
	return e.tenants[idx-1]
}

// ledgerOfID returns the per-tenant ledger an impression's money should
// also be attributed to, or nil for legacy impressions (which live only
// in the aggregate ledger).
func (e *Exchange) ledgerOfID(id ImpressionID) *Ledger {
	return e.tenantLedger[e.TenantOfImpression(id)]
}

// Tenants returns the exchange's tenant namespace order (sorted
// distinct campaign tenants). Index i mints ids from (i+1)<<52.
func (e *Exchange) Tenants() []string {
	return append([]string(nil), e.tenants...)
}

// LedgerOf returns one tenant's ledger view. The legacy tenant ("") is
// the aggregate ledger minus every named tenant's share, so the views
// always partition Ledger() exactly.
func (e *Exchange) LedgerOf(tenant string) Ledger {
	if tenant != "" {
		if tl := e.tenantLedger[tenant]; tl != nil {
			return *tl
		}
		return Ledger{}
	}
	l := e.ledger
	for _, t := range e.tenants {
		tl := e.tenantLedger[t]
		l.Sold -= tl.Sold
		l.BilledUSD -= tl.BilledUSD
		l.Billed -= tl.Billed
		l.FreeUSD -= tl.FreeUSD
		l.FreeShows -= tl.FreeShows
		l.Violations -= tl.Violations
		l.ViolatedUSD -= tl.ViolatedUSD
		l.PotentialUSD -= tl.PotentialUSD
	}
	return l
}

// OpenOf returns the tenant's open (sold, unsettled) impression count —
// the per-tenant book the shed threshold compares against.
func (e *Exchange) OpenOf(tenant string) int { return e.openCnt[tenant] }
