package auction

import (
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// DemandConfig parameterizes synthetic advertiser demand for the
// experiments: how many campaigns, their bid distribution, and how
// deep their budgets run relative to the simulated inventory.
type DemandConfig struct {
	Campaigns int

	// CPMMedianUSD and CPMSigma shape the lognormal bid distribution;
	// mobile banner CPMs in the paper's era clustered around $0.5-$2.
	CPMMedianUSD float64
	CPMSigma     float64

	// BudgetImpressions sizes each campaign's budget as roughly this
	// many impressions at its own bid.
	BudgetImpressions int64

	// Deadline is the display SLA campaigns buy. Zero means campaigns
	// accept the server's prefetch-window cap.
	Deadline time.Duration

	// TargetedFrac of campaigns target a random single category; the
	// rest are run-of-network.
	TargetedFrac float64
}

// DefaultDemand returns demand deep enough that auctions stay
// competitive for the whole simulation.
func DefaultDemand() DemandConfig {
	return DemandConfig{
		Campaigns:         40,
		CPMMedianUSD:      1.0,
		CPMSigma:          0.5,
		BudgetImpressions: 2_000_000,
		Deadline:          0,
		TargetedFrac:      0.3,
	}
}

// Generate synthesizes the campaign set deterministically from r.
func (d DemandConfig) Generate(r *simclock.Rand) []Campaign {
	cats := []trace.Category{
		trace.CatSocial, trace.CatGame, trace.CatNews,
		trace.CatWeather, trace.CatMedia, trace.CatUtility,
	}
	out := make([]Campaign, d.Campaigns)
	for i := range out {
		cpm := r.LogNormalMeanMedian(d.CPMMedianUSD, d.CPMSigma)
		c := Campaign{
			ID:         CampaignID(i),
			Advertiser: AdvertiserID(i / 2), // advertisers run ~2 campaigns each
			Name:       campaignName(i),
			BidCPM:     cpm,
			BudgetUSD:  cpm / 1000 * float64(d.BudgetImpressions),
			Deadline:   d.Deadline,
		}
		if r.Bernoulli(d.TargetedFrac) {
			c.Categories = []trace.Category{cats[r.Intn(len(cats))]}
		}
		out[i] = c
	}
	return out
}

func campaignName(i int) string {
	names := []string{"acme", "globex", "initech", "umbrella", "hooli", "stark", "wayne", "tyrell"}
	return names[i%len(names)]
}
