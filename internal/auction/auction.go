// Package auction implements the ad-exchange substrate: advertisers run
// campaigns with bids, budgets, impression goals, and targeting; display
// opportunities ("slots") are sold through sealed-bid second-price
// auctions; and a ledger tracks what is billed versus given away.
//
// The paper's architectural point is that modern ad systems sell each
// slot through a real-time auction at display time, which is exactly
// what prefetching breaks. This exchange therefore supports selling
// slots *before* they exist (the ad server offers predicted future
// inventory) and bills at display-confirmation time, so the revenue
// consequences of prediction error and replication are accounted
// faithfully: an impression displayed by more than one replica is paid
// only once, and an impression never displayed before its deadline is an
// SLA violation that releases its budget commitment.
package auction

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// AdvertiserID identifies a bidder.
type AdvertiserID int

// CampaignID identifies a campaign within an exchange.
type CampaignID int

// ImpressionID identifies one sold impression.
type ImpressionID int64

// Campaign is an advertiser's standing order for impressions.
type Campaign struct {
	ID         CampaignID
	Advertiser AdvertiserID
	Name       string

	// BidCPM is the bid per thousand impressions (USD). Per-impression
	// willingness to pay is BidCPM/1000.
	BidCPM float64

	// BudgetUSD caps total spend; the campaign stops bidding once its
	// committed spend reaches the budget.
	BudgetUSD float64

	// Goal caps total impressions purchased (0 = unlimited).
	Goal int64

	// Deadline is the display SLA the advertiser buys: a sold impression
	// must be shown within this long or it counts as a violation.
	Deadline time.Duration

	// Categories restricts the app categories this campaign will buy
	// (empty = run of network).
	Categories []trace.Category

	// FreqCapPerUserDay caps how many impressions of this campaign one
	// user may see per day (0 = uncapped). The exchange itself cannot
	// enforce it — it does not know which user a prefetched slot will
	// materialize on — so the ad server enforces it at replica
	// assignment and on-demand sale time via SellSlots' allow filter.
	FreqCapPerUserDay int

	// Tenant scopes the campaign to one publisher's namespace. Empty is
	// the legacy single-publisher deployment. The ad server only sells a
	// tenant's inventory to that tenant's campaigns, and the exchange
	// mints the tenant's impression ids from a disjoint namespace so one
	// tenant's traffic never perturbs another's id sequence or ledger.
	Tenant string `json:"Tenant,omitempty"`
}

// perImp returns the campaign's per-impression bid.
func (c Campaign) perImp() float64 { return c.BidCPM / 1000 }

// matches reports whether the campaign may buy a slot offered with the
// given category hints (nil hints = untargetable inventory, which only
// run-of-network campaigns buy).
func (c Campaign) matches(hints []trace.Category) bool {
	if len(c.Categories) == 0 {
		return true
	}
	for _, h := range hints {
		for _, want := range c.Categories {
			if h == want {
				return true
			}
		}
	}
	return false
}

// Impression is one sold display obligation.
type Impression struct {
	ID       ImpressionID
	Campaign CampaignID
	PriceUSD float64 // second-price outcome, per impression
	SoldAt   simclock.Time
	Deadline simclock.Time // display SLA expiry
}

// Ledger aggregates the money and SLA outcomes of an exchange.
type Ledger struct {
	Sold         int64
	BilledUSD    float64
	Billed       int64   // impressions billed (displayed at least once in time)
	FreeUSD      float64 // value of duplicate displays given away (revenue loss)
	FreeShows    int64   // duplicate display count
	Violations   int64   // sold impressions never displayed in time
	ViolatedUSD  float64 // their released value
	PotentialUSD float64 // total value sold (billed + violated upper bound)
}

// RevenueLossFrac returns the paper's revenue-loss metric: the value of
// free (duplicate) impressions relative to billed revenue.
func (l Ledger) RevenueLossFrac() float64 {
	if l.BilledUSD == 0 {
		return 0
	}
	return l.FreeUSD / l.BilledUSD
}

// ViolationRate returns violated impressions / sold impressions.
func (l Ledger) ViolationRate() float64 {
	if l.Sold == 0 {
		return 0
	}
	return float64(l.Violations) / float64(l.Sold)
}

// campaignState tracks the mutable side of a campaign.
type campaignState struct {
	c            Campaign
	soldCount    int64
	committedUSD float64
	billedUSD    float64
	billedCount  int64
}

// remainingImps returns how many more impressions the campaign can buy.
func (s *campaignState) canBuy() bool {
	if s.c.Goal > 0 && s.soldCount >= s.c.Goal {
		return false
	}
	return s.committedUSD+s.c.perImp() <= s.c.BudgetUSD+1e-12
}

// Exchange runs auctions over a fixed campaign set. Not safe for
// concurrent use; the simulator is single-threaded.
type Exchange struct {
	states  map[CampaignID]*campaignState
	order   []CampaignID // deterministic iteration order
	reserve float64      // reserve price per impression
	nextID  ImpressionID
	ledger  Ledger
	open    map[ImpressionID]*Impression // sold, not yet settled
	settled map[ImpressionID]bool        // billed or violated; extra shows are free

	// settledPrice remembers prices of settled impressions so late
	// duplicate displays can still be valued as revenue loss.
	settledPrice map[ImpressionID]float64

	// Multi-tenant state (see tenant.go): distinct campaign tenants in
	// sorted order, per-tenant impression-id cursors, per-tenant ledger
	// views, and open-impression counts keyed by tenant ("" = legacy).
	tenants      []string
	tenantNext   map[string]ImpressionID
	tenantLedger map[string]*Ledger
	openCnt      map[string]int
}

// NewExchange creates an exchange over the campaign set with the given
// per-impression reserve price. Campaign IDs must be unique.
func NewExchange(campaigns []Campaign, reserveUSD float64) (*Exchange, error) {
	if reserveUSD < 0 {
		return nil, fmt.Errorf("auction: negative reserve %v", reserveUSD)
	}
	e := &Exchange{
		states:  make(map[CampaignID]*campaignState, len(campaigns)),
		reserve: reserveUSD,
		open:    make(map[ImpressionID]*Impression),
		settled: make(map[ImpressionID]bool),
	}
	for _, c := range campaigns {
		if _, dup := e.states[c.ID]; dup {
			return nil, fmt.Errorf("auction: duplicate campaign id %d", c.ID)
		}
		if c.BidCPM < 0 || c.BudgetUSD < 0 || c.Goal < 0 || c.Deadline < 0 {
			return nil, fmt.Errorf("auction: campaign %d has negative parameters", c.ID)
		}
		e.states[c.ID] = &campaignState{c: c}
		e.order = append(e.order, c.ID)
	}
	sort.Slice(e.order, func(i, j int) bool { return e.order[i] < e.order[j] })
	e.initTenants()
	return e, nil
}

// Ledger returns a copy of the current ledger.
func (e *Exchange) Ledger() Ledger { return e.ledger }

// Open returns the number of sold-but-unsettled impressions.
func (e *Exchange) Open() int { return len(e.open) }

// CampaignSpend returns (billed, committed) dollars for one campaign.
func (e *Exchange) CampaignSpend(id CampaignID) (billed, committed float64, err error) {
	s, ok := e.states[id]
	if !ok {
		return 0, 0, fmt.Errorf("auction: unknown campaign %d", id)
	}
	return s.billedUSD, s.committedUSD, nil
}

// CampaignSold returns impressions sold to one campaign.
func (e *Exchange) CampaignSold(id CampaignID) (int64, error) {
	s, ok := e.states[id]
	if !ok {
		return 0, fmt.Errorf("auction: unknown campaign %d", id)
	}
	return s.soldCount, nil
}

// SellSlots auctions up to n slots at instant now, offered with the
// given category hints (nil = untargetable predicted inventory). Each
// slot runs an independent sealed-bid second-price auction among
// eligible campaigns; the price is the max of the runner-up bid and the
// reserve. Slots that attract no bid at or above reserve go unsold, and
// selling stops early once demand is exhausted.
//
// deadlineCap, if positive, tightens every sold impression's deadline to
// at most that duration (the server may need ads displayable within the
// prefetch window regardless of what the campaign bought).
func (e *Exchange) SellSlots(now simclock.Time, n int, hints []trace.Category, deadlineCap time.Duration) []Impression {
	return e.SellSlotsFiltered(now, n, hints, deadlineCap, nil)
}

// SellSlotsFiltered is SellSlots with an additional per-slot eligibility
// filter: campaigns for which allow returns false do not bid. The ad
// server uses it to enforce per-user frequency caps, which only it can
// evaluate.
func (e *Exchange) SellSlotsFiltered(now simclock.Time, n int, hints []trace.Category,
	deadlineCap time.Duration, allow func(CampaignID) bool) []Impression {
	var sold []Impression
	for i := 0; i < n; i++ {
		imp, ok := e.sellOne(now, hints, deadlineCap, allow)
		if !ok {
			break
		}
		sold = append(sold, imp)
	}
	return sold
}

func (e *Exchange) sellOne(now simclock.Time, hints []trace.Category, deadlineCap time.Duration, allow func(CampaignID) bool) (Impression, bool) {
	var best, second *campaignState
	for _, id := range e.order {
		s := e.states[id]
		if !s.canBuy() || !s.c.matches(hints) || s.c.perImp() < e.reserve {
			continue
		}
		if allow != nil && !allow(id) {
			continue
		}
		switch {
		case best == nil || s.c.perImp() > best.c.perImp():
			second = best
			best = s
		case second == nil || s.c.perImp() > second.c.perImp():
			second = s
		}
	}
	if best == nil {
		return Impression{}, false
	}
	price := e.reserve
	if second != nil && second.c.perImp() > price {
		price = second.c.perImp()
	}
	deadline := best.c.Deadline
	if deadlineCap > 0 && (deadline == 0 || deadline > deadlineCap) {
		deadline = deadlineCap
	}
	imp := Impression{
		ID:       e.mintID(best.c.Tenant),
		Campaign: best.c.ID,
		PriceUSD: price,
		SoldAt:   now,
		Deadline: now.Add(deadline),
	}
	best.soldCount++
	best.committedUSD += price
	e.ledger.Sold++
	e.ledger.PotentialUSD += price
	if tl := e.tenantLedger[best.c.Tenant]; tl != nil {
		tl.Sold++
		tl.PotentialUSD += price
	}
	stored := imp
	e.open[imp.ID] = &stored
	e.openCnt[best.c.Tenant]++
	return imp, true
}

// RecordDisplay reports that a replica displayed impression id at
// instant at. The first in-deadline display bills the advertiser; any
// further display (racing replicas, or a display after settlement) is a
// free impression counted as revenue loss. A first display *after* the
// deadline is both a violation (settled by RecordExpiry) and a free
// show. Unknown impressions error.
func (e *Exchange) RecordDisplay(id ImpressionID, at simclock.Time) error {
	imp, openOK := e.open[id]
	if !openOK {
		if e.settled[id] {
			// Late duplicate from a replica that didn't hear the news.
			e.ledger.FreeShows++
			// Value: we no longer know the price cheaply unless we keep it;
			// see settledPrice map below.
			e.ledger.FreeUSD += e.settledPrice[id]
			if tl := e.ledgerOfID(id); tl != nil {
				tl.FreeShows++
				tl.FreeUSD += e.settledPrice[id]
			}
			return nil
		}
		return fmt.Errorf("auction: display report for unknown impression %d", id)
	}
	if at.After(imp.Deadline) {
		// Too late to bill; the violation is recorded at expiry sweep,
		// but the eyeballs were given away for free.
		e.ledger.FreeShows++
		e.ledger.FreeUSD += imp.PriceUSD
		if tl := e.ledgerOfID(id); tl != nil {
			tl.FreeShows++
			tl.FreeUSD += imp.PriceUSD
		}
		return nil
	}
	s := e.states[imp.Campaign]
	s.billedUSD += imp.PriceUSD
	s.billedCount++
	e.ledger.Billed++
	e.ledger.BilledUSD += imp.PriceUSD
	if tl := e.ledgerOfID(id); tl != nil {
		tl.Billed++
		tl.BilledUSD += imp.PriceUSD
	}
	e.settle(id, imp.PriceUSD)
	return nil
}

// RecordExpiry reports that impression id passed its deadline without a
// billed display: an SLA violation. Its budget commitment is released.
// Expiring an already-settled impression is a no-op so sweeps can be
// idempotent.
func (e *Exchange) RecordExpiry(id ImpressionID) {
	imp, ok := e.open[id]
	if !ok {
		return
	}
	s := e.states[imp.Campaign]
	s.committedUSD -= imp.PriceUSD
	if s.c.Goal > 0 {
		s.soldCount-- // the unfilled slot returns to the goal
	}
	e.ledger.Violations++
	e.ledger.ViolatedUSD += imp.PriceUSD
	if tl := e.ledgerOfID(id); tl != nil {
		tl.Violations++
		tl.ViolatedUSD += imp.PriceUSD
	}
	e.settle(id, imp.PriceUSD)
}

// Campaign returns a campaign's definition by id.
func (e *Exchange) Campaign(id CampaignID) (Campaign, bool) {
	s, ok := e.states[id]
	if !ok {
		return Campaign{}, false
	}
	return s.c, true
}

// CampaignOf returns the campaign that bought an impression (ok=false
// for unknown or already-settled impressions whose record was dropped).
func (e *Exchange) CampaignOf(id ImpressionID) (CampaignID, bool) {
	if imp, ok := e.open[id]; ok {
		return imp.Campaign, true
	}
	return 0, false
}

// SweepExpired records an SLA violation for every open impression whose
// deadline has passed. It returns the number of impressions expired.
// Iteration is sorted so ledger arithmetic stays deterministic.
func (e *Exchange) SweepExpired(now simclock.Time) int {
	var ids []ImpressionID
	for id, imp := range e.open {
		if now.After(imp.Deadline) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.RecordExpiry(id)
	}
	return len(ids)
}

func (e *Exchange) settle(id ImpressionID, price float64) {
	if _, ok := e.open[id]; ok {
		e.openCnt[e.TenantOfImpression(id)]--
	}
	delete(e.open, id)
	e.settled[id] = true
	if e.settledPrice == nil {
		e.settledPrice = make(map[ImpressionID]float64)
	}
	e.settledPrice[id] = price
}
