package auction

import (
	"fmt"
	"sort"
)

// The durability layer (internal/wal) snapshots the exchange as part of
// the ad server's full-state checkpoint. The state is self-contained —
// campaign definitions ride along with their counters — so a restored
// exchange is byte-for-byte equivalent to the original regardless of
// how the replacement process regenerated its demand.

// CampaignSnapshot is one campaign's definition plus mutable counters.
type CampaignSnapshot struct {
	Campaign     Campaign `json:"campaign"`
	SoldCount    int64    `json:"sold_count"`
	CommittedUSD float64  `json:"committed_usd"`
	BilledUSD    float64  `json:"billed_usd"`
	BilledCount  int64    `json:"billed_count"`
}

// SettledImpression records a settled impression's id and price, kept
// so late duplicate displays can still be valued as revenue loss.
type SettledImpression struct {
	ID       ImpressionID `json:"id"`
	PriceUSD float64      `json:"price_usd"`
}

// TenantCursor is one tenant's impression-id cursor.
type TenantCursor struct {
	Tenant string       `json:"tenant"`
	Next   ImpressionID `json:"next"`
}

// TenantLedgerState is one tenant's ledger view.
type TenantLedgerState struct {
	Tenant string `json:"tenant"`
	Ledger Ledger `json:"ledger"`
}

// ExchangeState is the exchange's complete serializable state. The
// tenant fields are omitted for single-tenant exchanges so legacy
// snapshots stay byte-identical.
type ExchangeState struct {
	Reserve   float64             `json:"reserve"`
	NextID    ImpressionID        `json:"next_id"`
	Ledger    Ledger              `json:"ledger"`
	Campaigns []CampaignSnapshot  `json:"campaigns"`
	Open      []Impression        `json:"open"`
	Settled   []SettledImpression `json:"settled"`

	TenantNext    []TenantCursor      `json:"tenant_next,omitempty"`
	TenantLedgers []TenantLedgerState `json:"tenant_ledgers,omitempty"`
}

// Snapshot captures the exchange's full state. Slices are sorted by id
// so the encoding is deterministic.
func (e *Exchange) Snapshot() ExchangeState {
	st := ExchangeState{
		Reserve:   e.reserve,
		NextID:    e.nextID,
		Ledger:    e.ledger,
		Campaigns: make([]CampaignSnapshot, 0, len(e.order)),
		Open:      make([]Impression, 0, len(e.open)),
		Settled:   make([]SettledImpression, 0, len(e.settled)),
	}
	for _, id := range e.order {
		s := e.states[id]
		st.Campaigns = append(st.Campaigns, CampaignSnapshot{
			Campaign:     s.c,
			SoldCount:    s.soldCount,
			CommittedUSD: s.committedUSD,
			BilledUSD:    s.billedUSD,
			BilledCount:  s.billedCount,
		})
	}
	for _, imp := range e.open {
		st.Open = append(st.Open, *imp)
	}
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].ID < st.Open[j].ID })
	for id := range e.settled {
		st.Settled = append(st.Settled, SettledImpression{ID: id, PriceUSD: e.settledPrice[id]})
	}
	sort.Slice(st.Settled, func(i, j int) bool { return st.Settled[i].ID < st.Settled[j].ID })
	for _, t := range e.tenants {
		st.TenantNext = append(st.TenantNext, TenantCursor{Tenant: t, Next: e.tenantNext[t]})
		st.TenantLedgers = append(st.TenantLedgers, TenantLedgerState{Tenant: t, Ledger: *e.tenantLedger[t]})
	}
	return st
}

// Restore overwrites the exchange with a previously captured state.
func (e *Exchange) Restore(st ExchangeState) error {
	states := make(map[CampaignID]*campaignState, len(st.Campaigns))
	order := make([]CampaignID, 0, len(st.Campaigns))
	for _, cs := range st.Campaigns {
		if _, dup := states[cs.Campaign.ID]; dup {
			return fmt.Errorf("auction: restore: duplicate campaign id %d", cs.Campaign.ID)
		}
		states[cs.Campaign.ID] = &campaignState{
			c:            cs.Campaign,
			soldCount:    cs.SoldCount,
			committedUSD: cs.CommittedUSD,
			billedUSD:    cs.BilledUSD,
			billedCount:  cs.BilledCount,
		}
		order = append(order, cs.Campaign.ID)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	open := make(map[ImpressionID]*Impression, len(st.Open))
	for _, imp := range st.Open {
		if _, ok := states[imp.Campaign]; !ok {
			return fmt.Errorf("auction: restore: open impression %d references unknown campaign %d", imp.ID, imp.Campaign)
		}
		stored := imp
		open[imp.ID] = &stored
	}
	settled := make(map[ImpressionID]bool, len(st.Settled))
	settledPrice := make(map[ImpressionID]float64, len(st.Settled))
	for _, s := range st.Settled {
		settled[s.ID] = true
		settledPrice[s.ID] = s.PriceUSD
	}
	e.states = states
	e.order = order
	e.reserve = st.Reserve
	e.nextID = st.NextID
	e.ledger = st.Ledger
	e.open = open
	e.settled = settled
	e.settledPrice = settledPrice
	// The tenant namespace order derives from the campaign set, then the
	// snapshot's cursors/ledgers overlay it and the open counts are
	// recounted from the restored open book.
	e.initTenants()
	for _, tc := range st.TenantNext {
		if _, ok := e.tenantNext[tc.Tenant]; !ok {
			return fmt.Errorf("auction: restore: cursor for unknown tenant %q", tc.Tenant)
		}
		e.tenantNext[tc.Tenant] = tc.Next
	}
	for _, tl := range st.TenantLedgers {
		dst, ok := e.tenantLedger[tl.Tenant]
		if !ok {
			return fmt.Errorf("auction: restore: ledger for unknown tenant %q", tl.Tenant)
		}
		*dst = tl.Ledger
	}
	for id := range e.open {
		e.openCnt[e.TenantOfImpression(id)]++
	}
	return nil
}
