package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{Profile3G(), ProfileLTE(), ProfileWiFi()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []Profile{
		{Name: "no-power", ThroughputBps: 1},
		{Name: "no-tput", ActivePower: 1},
		{Name: "neg-dur", ActivePower: 1, ThroughputBps: 1, TailHighDur: -time.Second},
		{Name: "neg-pow", ActivePower: 1, ThroughputBps: 1, TailLowPower: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", p.Name)
		}
	}
}

func TestTechString(t *testing.T) {
	if Tech3G.String() != "3G" || TechLTE.String() != "LTE" || TechWiFi.String() != "WiFi" {
		t.Fatal("Tech.String wrong")
	}
	if Tech(99).String() != "Tech(99)" {
		t.Fatal("unknown tech String wrong")
	}
}

func TestTransferDuration(t *testing.T) {
	p := Profile3G()
	// 1 Mbps, 200 ms RTT: 125000 bytes = 1 s serialization.
	if got := p.TransferDuration(125000); got != 1200*time.Millisecond {
		t.Fatalf("got %v", got)
	}
	if got := p.TransferDuration(-5); got != p.LatencyRTT {
		t.Fatalf("negative bytes should cost latency only, got %v", got)
	}
}

func TestTailEnergyAfter(t *testing.T) {
	p := Profile3G()
	if got := p.TailEnergyAfter(0); got != 0 {
		t.Fatalf("gap 0: %v", got)
	}
	if got := p.TailEnergyAfter(2 * time.Second); !almostEq(got, 2*0.8, 1e-9) {
		t.Fatalf("gap 2s: %v", got)
	}
	if got := p.TailEnergyAfter(5 * time.Second); !almostEq(got, 5*0.8, 1e-9) {
		t.Fatalf("gap 5s: %v", got)
	}
	if got := p.TailEnergyAfter(10 * time.Second); !almostEq(got, 5*0.8+5*0.46, 1e-9) {
		t.Fatalf("gap 10s: %v", got)
	}
	full := p.FullTailEnergy()
	if got := p.TailEnergyAfter(time.Hour); got != full {
		t.Fatalf("gap 1h: %v want full %v", got, full)
	}
	if !almostEq(full, 5*0.8+12*0.46, 1e-9) {
		t.Fatalf("full tail: %v", full)
	}
}

// The core tail-energy claim: a single small ad download on 3G costs an
// order of magnitude more than its transmission energy.
func TestIsolatedTransferDominatedByTail(t *testing.T) {
	p := Profile3G()
	total := p.IsolatedTransferEnergy(2000)
	xfer := p.ActivePower * p.TransferDuration(2000).Seconds()
	if total < 10*xfer {
		t.Fatalf("tail should dominate: total=%.3fJ transfer=%.3fJ", total, xfer)
	}
	// WiFi should NOT be tail-dominated.
	w := ProfileWiFi()
	wTotal := w.IsolatedTransferEnergy(2000)
	if wTotal > 1.0 {
		t.Fatalf("WiFi isolated transfer implausibly expensive: %.3fJ", wTotal)
	}
}

// Batching n ads in one radio wake must cost far less than n isolated
// downloads, and the saving must grow with n.
func TestBatchingAmortizesTail(t *testing.T) {
	p := Profile3G()
	iso := p.IsolatedTransferEnergy(2000)
	for _, n := range []int{2, 5, 10, 50} {
		batched := p.BatchedTransferEnergy(2000, n)
		if batched >= iso*float64(n) {
			t.Fatalf("n=%d: batching did not save energy (%.2f vs %.2f)", n, batched, iso*float64(n))
		}
	}
	if p.BatchedTransferEnergy(2000, 0) != 0 {
		t.Fatal("batch of 0 should cost 0")
	}
	// Per-ad batched cost approaches pure transmission cost.
	per50 := p.BatchedTransferEnergy(2000, 50) / 50
	if per50 > 0.5 {
		t.Fatalf("per-ad batched cost should be small, got %.3fJ", per50)
	}
}

func TestRadioSingleTransfer(t *testing.T) {
	p := Profile3G()
	r := New(p)
	end := r.Transfer(0, 2000, "ads")
	wantEnd := simclock.Time(p.PromoIdleDur + p.TransferDuration(2000))
	if end != wantEnd {
		t.Fatalf("end=%v want %v", end, wantEnd)
	}
	r.Flush()
	u := r.UsageOf("ads")
	if !almostEq(u.TotalJ(), p.IsolatedTransferEnergy(2000), 1e-9) {
		t.Fatalf("single transfer %.4fJ want %.4fJ", u.TotalJ(), p.IsolatedTransferEnergy(2000))
	}
	if u.Transfers != 1 || u.Bytes != 2000 {
		t.Fatalf("counters: %+v", u)
	}
}

func TestRadioBackToBackSharesTail(t *testing.T) {
	p := Profile3G()
	// Two transfers 1 s apart: second arrives inside the DCH tail, so no
	// promotion for it and the first is charged only 1 s of DCH tail.
	r := New(p)
	end1 := r.Transfer(0, 2000, "a")
	r.Transfer(end1.Add(time.Second), 2000, "b")
	r.Flush()
	a, b := r.UsageOf("a"), r.UsageOf("b")
	if !almostEq(a.TailJ, 0.8, 1e-9) {
		t.Fatalf("a tail %.4f want 0.8", a.TailJ)
	}
	if b.PromoJ != 0 {
		t.Fatalf("b should need no promotion, got %.4f", b.PromoJ)
	}
	if !almostEq(b.TailJ, p.FullTailEnergy(), 1e-9) {
		t.Fatalf("b owns the final full tail, got %.4f", b.TailJ)
	}
}

func TestRadioLowTailPromotion(t *testing.T) {
	p := Profile3G()
	r := New(p)
	end1 := r.Transfer(0, 2000, "a")
	// Arrive 8 s later: past DCH (5 s) into FACH; partial promotion.
	r.Transfer(end1.Add(8*time.Second), 2000, "b")
	r.Flush()
	a, b := r.UsageOf("a"), r.UsageOf("b")
	wantTail := 5*0.8 + 3*0.46
	if !almostEq(a.TailJ, wantTail, 1e-9) {
		t.Fatalf("a tail %.4f want %.4f", a.TailJ, wantTail)
	}
	wantPromo := p.PromoLowPower * p.PromoLowDur.Seconds()
	if !almostEq(b.PromoJ, wantPromo, 1e-9) {
		t.Fatalf("b promo %.4f want %.4f", b.PromoJ, wantPromo)
	}
}

func TestRadioColdAfterFullTail(t *testing.T) {
	p := Profile3G()
	r := New(p)
	end1 := r.Transfer(0, 2000, "a")
	r.Transfer(end1.Add(time.Hour), 2000, "b")
	r.Flush()
	a, b := r.UsageOf("a"), r.UsageOf("b")
	if !almostEq(a.TailJ, p.FullTailEnergy(), 1e-9) {
		t.Fatalf("a should own a full tail, got %.4f", a.TailJ)
	}
	wantPromo := p.PromoIdlePower * p.PromoIdleDur.Seconds()
	if !almostEq(b.PromoJ, wantPromo, 1e-9) {
		t.Fatalf("b needs a cold promotion, got %.4f want %.4f", b.PromoJ, wantPromo)
	}
}

func TestRadioSerializesConcurrentRequests(t *testing.T) {
	p := Profile3G()
	r := New(p)
	end1 := r.Transfer(0, 125000, "a") // 1 s serialization
	// Requested while the first is in flight: starts when link frees.
	end2 := r.Transfer(simclock.At(100*time.Millisecond), 125000, "b")
	if !end2.After(end1) {
		t.Fatalf("serialized transfer should end after the first: %v vs %v", end2, end1)
	}
	if got, want := end2.Sub(end1), p.TransferDuration(125000); got != want {
		t.Fatalf("second transfer duration %v want %v", got, want)
	}
	r.Flush()
	// No tail settled between them, no promotion for b.
	if b := r.UsageOf("b"); b.PromoJ != 0 {
		t.Fatalf("b promo %.4f want 0", b.PromoJ)
	}
	if a := r.UsageOf("a"); a.TailJ != 0 {
		t.Fatalf("a tail %.4f want 0", a.TailJ)
	}
}

func TestRadioFlushSemantics(t *testing.T) {
	r := New(Profile3G())
	r.Flush() // unused: no-op
	if got := r.Total().TotalJ(); got != 0 {
		t.Fatalf("unused radio energy %v", got)
	}
	r2 := New(Profile3G())
	r2.Transfer(0, 100, "x")
	r2.Flush()
	r2.Flush() // double flush: no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Transfer after Flush should panic")
		}
	}()
	r2.Transfer(simclock.At(time.Hour), 100, "x")
}

func TestRadioOwnersAndTotal(t *testing.T) {
	r := New(Profile3G())
	e := r.Transfer(0, 100, "b-owner")
	e = r.Transfer(e.Add(time.Second), 100, "a-owner")
	_ = e
	r.Flush()
	owners := r.Owners()
	if len(owners) != 2 || owners[0] != "a-owner" || owners[1] != "b-owner" {
		t.Fatalf("owners %v", owners)
	}
	tot := r.Total()
	sum := r.UsageOf("a-owner").TotalJ() + r.UsageOf("b-owner").TotalJ()
	if !almostEq(tot.TotalJ(), sum, 1e-9) {
		t.Fatalf("total %.4f != sum %.4f", tot.TotalJ(), sum)
	}
	if r.UsageOf("nobody") != (Usage{}) {
		t.Fatal("unknown owner should have zero usage")
	}
}

func TestRadioOnAndTailTime(t *testing.T) {
	p := Profile3G()
	r := New(p)
	end := r.Transfer(0, 125000, "a")
	r.Transfer(end.Add(2*time.Second), 125000, "a")
	r.Flush()
	wantOn := p.PromoIdleDur + 2*p.TransferDuration(125000)
	if r.OnTime() != wantOn {
		t.Fatalf("OnTime %v want %v", r.OnTime(), wantOn)
	}
	wantTail := 2*time.Second + p.TailDur()
	if r.TailTime() != wantTail {
		t.Fatalf("TailTime %v want %v", r.TailTime(), wantTail)
	}
}

// Property: replayed total energy equals the closed-form decomposition,
// and batching the same payloads never costs more than spreading them
// beyond the tail.
func TestRadioEnergyConservationProperty(t *testing.T) {
	p := Profile3G()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		// Spread: transfers separated by more than the full tail.
		spread := New(p)
		at := simclock.Time(0)
		for i := 0; i < count; i++ {
			end := spread.Transfer(at, 2000, "x")
			at = end.Add(p.TailDur() + time.Duration(r.Int63n(int64(10*time.Second))) + time.Second)
		}
		spread.Flush()
		wantSpread := float64(count) * p.IsolatedTransferEnergy(2000)
		if !almostEq(spread.UsageOf("x").TotalJ(), wantSpread, 1e-6) {
			return false
		}
		// Batch: all back-to-back.
		batch := New(p)
		at = 0
		for i := 0; i < count; i++ {
			at = batch.Transfer(at, 2000, "x")
		}
		batch.Flush()
		wantBatch := p.BatchedTransferEnergy(2000, count)
		if !almostEq(batch.UsageOf("x").TotalJ(), wantBatch, 1e-6) {
			return false
		}
		return batch.UsageOf("x").TotalJ() <= spread.UsageOf("x").TotalJ()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total energy is monotone in the number of transfers, for any
// arrival pattern.
func TestRadioMonotonicityProperty(t *testing.T) {
	p := ProfileLTE()
	f := func(seed int64, n uint8) bool {
		count := int(n%15) + 2
		r := rand.New(rand.NewSource(seed))
		gaps := make([]time.Duration, count)
		for i := range gaps {
			gaps[i] = time.Duration(r.Int63n(int64(30 * time.Second)))
		}
		run := func(k int) float64 {
			rd := New(p)
			at := simclock.Time(0)
			for i := 0; i < k; i++ {
				end := rd.Transfer(at, 1500, "x")
				at = end.Add(gaps[i])
			}
			rd.Flush()
			return rd.Total().TotalJ()
		}
		return run(count-1) <= run(count)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRadioOutOfOrderOK(t *testing.T) {
	// Requests during an in-flight transfer are legal (serialized), and
	// requests at identical instants are too.
	r := New(Profile3G())
	r.Transfer(0, 125000, "a")
	r.Transfer(0, 1000, "b")
	r.Transfer(0, 1000, "c")
	r.Flush()
	if got := r.Total().Transfers; got != 3 {
		t.Fatalf("transfers=%d", got)
	}
}

func TestNewPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid profile should panic")
		}
	}()
	New(Profile{Name: "bad"})
}

func TestRadioString(t *testing.T) {
	r := New(Profile3G())
	r.Transfer(0, 1000, "x")
	r.Flush()
	if s := r.String(); s == "" {
		t.Fatal("empty String")
	}
}
