package radio

import (
	"math"
	"testing"
	"time"
)

func TestBatteryBasics(t *testing.T) {
	b := TypicalBattery2013()
	if got := b.CapacityJ(); math.Abs(got-19980) > 1 {
		t.Fatalf("CapacityJ=%v", got)
	}
	if got := b.Percent(1998); math.Abs(got-10) > 0.01 {
		t.Fatalf("Percent=%v", got)
	}
	if (Battery{}).Fraction(100) != 0 {
		t.Fatal("zero capacity should give 0")
	}
}

func TestBatteryAdImpact(t *testing.T) {
	// The paper's motivating arithmetic: ~600 J/day of ad traffic on a
	// ~20 kJ battery is ~3% of charge per day.
	b := TypicalBattery2013()
	pct := b.Percent(600)
	if pct < 2 || pct > 4 {
		t.Fatalf("600 J should be ~3%% of charge, got %.2f%%", pct)
	}
}

func TestLifetimeLoss(t *testing.T) {
	b := TypicalBattery2013()
	base := 24 * time.Hour
	// Adding half of the baseline drain rate cuts lifetime to 2/3.
	halfLoad := b.CapacityJ() / 2
	got := b.LifetimeLoss(base, halfLoad)
	want := 16 * time.Hour
	if math.Abs(got.Hours()-want.Hours()) > 0.01 {
		t.Fatalf("got %v want %v", got, want)
	}
	// Degenerate inputs return the baseline.
	if b.LifetimeLoss(base, 0) != base || b.LifetimeLoss(0, 100) != 0 {
		t.Fatal("degenerate handling wrong")
	}
	if (Battery{}).LifetimeLoss(base, 100) != base {
		t.Fatal("zero capacity should return baseline")
	}
}

func TestLifetimeLossMonotone(t *testing.T) {
	b := TypicalBattery2013()
	base := 30 * time.Hour
	prev := base
	for load := 100.0; load <= 2000; load += 100 {
		got := b.LifetimeLoss(base, load)
		if got >= prev {
			t.Fatalf("lifetime should fall with load: %v at %v", got, load)
		}
		prev = got
	}
}
