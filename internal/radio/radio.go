package radio

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simclock"
)

// Owner identifies who caused a transfer for energy attribution, e.g.
// "app:facebook" or "ads". Any string works; the energy package defines
// the conventions used by the experiments.
type Owner string

// Usage is the energy attributed to a single owner.
type Usage struct {
	PromoJ    float64 // promotion ramps this owner triggered
	TransferJ float64 // active transmission energy
	TailJ     float64 // (possibly truncated) tails this owner left behind
	Bytes     int64
	Transfers int64
}

// TotalJ returns the owner's total attributed energy in joules.
func (u Usage) TotalJ() float64 { return u.PromoJ + u.TransferJ + u.TailJ }

// Add accumulates another usage record into u.
func (u *Usage) Add(o Usage) {
	u.PromoJ += o.PromoJ
	u.TransferJ += o.TransferJ
	u.TailJ += o.TailJ
	u.Bytes += o.Bytes
	u.Transfers += o.Transfers
}

// Radio replays a time-ordered stream of transfers against a Profile and
// attributes energy to owners. It is the exact accounting engine: tails
// are truncated when a later transfer re-wakes the radio, promotions are
// skipped or downgraded when the radio is still warm, and concurrent
// requests are serialized on the single link.
//
// Radio is not safe for concurrent use; in the simulator each simulated
// device owns one Radio.
type Radio struct {
	profile Profile

	// lastEnd is the instant the most recent transfer finished on the
	// air; lastOwner is who gets charged for the tail that follows it;
	// lastFACH records whether that transfer ran on the shared channel
	// (leaving only the low-power tail).
	started   bool
	lastEnd   simclock.Time
	lastOwner Owner
	lastFACH  bool

	usage map[Owner]*Usage

	onTime   time.Duration // ACTIVE + promotion time
	tailTime time.Duration // settled tail time (truncated or full)
	flushed  bool
}

// New creates a replay engine for the given profile. It panics if the
// profile is invalid, since a bad profile poisons every later result.
func New(p Profile) *Radio {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Radio{profile: p, usage: make(map[Owner]*Usage)}
}

// Profile returns the profile the radio was built with.
func (r *Radio) Profile() Profile { return r.profile }

// Transfer replays a transfer of the given size requested at instant at,
// attributed to owner. It returns the instant the transfer completes on
// the air. Requests may arrive while an earlier transfer is still in
// flight; they are serialized (the radio is a single link), starting when
// the link frees up.
//
// Transfers must be requested in nondecreasing time order; out-of-order
// requests panic, since they indicate a simulator bug.
func (r *Radio) Transfer(at simclock.Time, bytes int64, owner Owner) simclock.Time {
	if r.flushed {
		panic("radio: Transfer after Flush")
	}
	if bytes < 0 {
		bytes = 0
	}
	p := r.profile
	u := r.ownerUsage(owner)

	// rrcState classifies where the radio is when the transfer arrives.
	type rrcState int
	const (
		stateActive rrcState = iota // dedicated channel still hot
		stateShared                 // low-power shared channel (FACH)
		stateIdle
	)

	start := at
	state := stateIdle
	if r.started {
		if at < r.lastEnd {
			// Link busy: serialize. No gap, no tail for the previous
			// transfer, no promotion needed.
			start = r.lastEnd
			if r.lastFACH {
				state = stateShared
			} else {
				state = stateActive
			}
		} else {
			gap := at.Sub(r.lastEnd)
			prev := r.ownerUsage(r.lastOwner)
			if r.lastFACH {
				// Shared-channel transfers leave only the low tail.
				prev.TailJ += p.FACHTailEnergy(gap)
				if gap < p.TailLowDur {
					r.tailTime += gap
					state = stateShared
				} else {
					r.tailTime += p.TailLowDur
					state = stateIdle
				}
			} else {
				prev.TailJ += p.TailEnergyAfter(gap)
				switch {
				case gap <= p.TailHighDur:
					r.tailTime += gap
					state = stateActive
				case gap < p.TailDur():
					r.tailTime += gap
					state = stateShared
				default:
					r.tailTime += p.TailDur()
					state = stateIdle
				}
			}
		}
	}

	// Channel choice: small transfers ride the shared channel unless the
	// dedicated channel is already hot.
	useFACH := p.FACHEligible(bytes) && state != stateActive

	var promoJ float64
	var promoDur time.Duration
	switch {
	case state == stateActive:
		// No promotion needed.
	case state == stateShared:
		if !useFACH {
			promoJ = p.PromoLowPower * p.PromoLowDur.Seconds()
			promoDur = p.PromoLowDur
		}
		// Staying on the shared channel needs no ramp.
	default: // idle
		if useFACH {
			// Ramp to the shared channel only: the cheap promotion.
			promoJ = p.PromoLowPower * p.PromoLowDur.Seconds()
			promoDur = p.PromoLowDur
		} else {
			promoJ = p.PromoIdlePower * p.PromoIdleDur.Seconds()
			promoDur = p.PromoIdleDur
		}
	}

	var dur time.Duration
	var xferJ float64
	if useFACH {
		dur = p.FACHTransferDuration(bytes)
		xferJ = p.TailLowPower * dur.Seconds()
	} else {
		dur = p.TransferDuration(bytes)
		xferJ = p.ActivePower * dur.Seconds()
	}
	end := start.Add(promoDur + dur)

	u.PromoJ += promoJ
	u.TransferJ += xferJ
	u.Bytes += bytes
	u.Transfers++

	r.onTime += promoDur + dur
	r.started = true
	r.lastEnd = end
	r.lastOwner = owner
	r.lastFACH = useFACH
	return end
}

// Flush settles the final tail (charged in full to the last transfer's
// owner). After Flush the radio accepts no more transfers. Flushing an
// unused or already-flushed radio is a no-op.
func (r *Radio) Flush() {
	if r.flushed || !r.started {
		r.flushed = true
		return
	}
	prev := r.ownerUsage(r.lastOwner)
	if r.lastFACH {
		prev.TailJ += r.profile.TailLowPower * r.profile.TailLowDur.Seconds()
		r.tailTime += r.profile.TailLowDur
	} else {
		prev.TailJ += r.profile.FullTailEnergy()
		r.tailTime += r.profile.TailDur()
	}
	r.flushed = true
}

// UsageOf returns the accumulated usage for one owner (zero value if the
// owner never transferred).
func (r *Radio) UsageOf(owner Owner) Usage {
	if u, ok := r.usage[owner]; ok {
		return *u
	}
	return Usage{}
}

// Owners returns all owners seen, sorted for deterministic iteration.
func (r *Radio) Owners() []Owner {
	out := make([]Owner, 0, len(r.usage))
	for o := range r.usage {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the usage summed over all owners.
func (r *Radio) Total() Usage {
	var t Usage
	for _, o := range r.Owners() {
		t.Add(*r.usage[o])
	}
	return t
}

// OnTime returns cumulative promotion+active air time.
func (r *Radio) OnTime() time.Duration { return r.onTime }

// TailTime returns cumulative settled tail time.
func (r *Radio) TailTime() time.Duration { return r.tailTime }

func (r *Radio) ownerUsage(o Owner) *Usage {
	u, ok := r.usage[o]
	if !ok {
		u = &Usage{}
		r.usage[o] = u
	}
	return u
}

// String summarizes total energy for debugging.
func (r *Radio) String() string {
	t := r.Total()
	return fmt.Sprintf("radio(%s): %.2f J over %d transfers (%d B)", r.profile.Name, t.TotalJ(), t.Transfers, t.Bytes)
}
