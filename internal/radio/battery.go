package radio

import "time"

// Battery converts attributed joules into user-facing battery impact.
// The paper frames its results in battery-lifetime terms: a phone-era
// battery held roughly 5-6 Wh, so tens of joules per day of ad traffic
// translate into noticeable percentage points of charge.
type Battery struct {
	CapacityWh float64
}

// TypicalBattery2013 returns the battery of a 2013-class smartphone
// (~1500 mAh at 3.7 V ≈ 5.55 Wh ≈ 20 kJ).
func TypicalBattery2013() Battery { return Battery{CapacityWh: 5.55} }

// CapacityJ returns the battery capacity in joules.
func (b Battery) CapacityJ() float64 { return b.CapacityWh * 3600 }

// Fraction returns the fraction of a full charge that the given energy
// represents (0 for a non-positive capacity).
func (b Battery) Fraction(joules float64) float64 {
	c := b.CapacityJ()
	if c <= 0 {
		return 0
	}
	return joules / c
}

// Percent returns Fraction as a percentage.
func (b Battery) Percent(joules float64) float64 { return 100 * b.Fraction(joules) }

// LifetimeLoss estimates how much sooner a battery that would otherwise
// last `baseline` drains when an extra `joulesPerDay` load is added:
// it returns the reduced lifetime. A non-positive capacity or baseline
// returns the baseline unchanged.
func (b Battery) LifetimeLoss(baseline time.Duration, joulesPerDay float64) time.Duration {
	c := b.CapacityJ()
	if c <= 0 || baseline <= 0 || joulesPerDay <= 0 {
		return baseline
	}
	// Baseline drain rate uses the whole capacity over the baseline.
	basePerDay := c / (baseline.Hours() / 24)
	newLifeDays := c / (basePerDay + joulesPerDay)
	return time.Duration(newLifeDays * 24 * float64(time.Hour))
}
