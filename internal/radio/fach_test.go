package radio

import (
	"math"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestFACHEligibility(t *testing.T) {
	p := Profile3GWithFACH(4096)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.FACHEligible(2048) || p.FACHEligible(8192) {
		t.Fatal("eligibility threshold wrong")
	}
	if Profile3G().FACHEligible(100) {
		t.Fatal("disabled profile should never be eligible")
	}
	// LTE-style profile without a low tail state cannot use the path.
	lte := ProfileLTE()
	lte.FACHThresholdBytes = 4096
	if lte.FACHEligible(100) {
		t.Fatal("no low tail state, no shared channel")
	}
	bad := Profile3G()
	bad.FACHThresholdBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestFACHIsolatedTransferCheaper(t *testing.T) {
	on := Profile3GWithFACH(4096)
	off := Profile3G()
	cost := func(p Profile) float64 {
		r := New(p)
		r.Transfer(0, 2048, "ads")
		r.Flush()
		return r.UsageOf("ads").TotalJ()
	}
	fach, dch := cost(on), cost(off)
	if fach >= dch {
		t.Fatalf("shared channel should be cheaper: %.2f vs %.2f J", fach, dch)
	}
	// Expected composition: cheap promo + slow low-power transfer +
	// low-tail only.
	p := on
	want := p.PromoLowPower*p.PromoLowDur.Seconds() +
		p.TailLowPower*p.FACHTransferDuration(2048).Seconds() +
		p.TailLowPower*p.TailLowDur.Seconds()
	if math.Abs(fach-want) > 1e-9 {
		t.Fatalf("FACH cost %.4f want %.4f", fach, want)
	}
}

func TestFACHLargeTransferStillUsesDCH(t *testing.T) {
	p := Profile3GWithFACH(1024)
	r := New(p)
	r.Transfer(0, 100<<10, "app") // 100 KB: way over threshold
	r.Flush()
	u := r.UsageOf("app")
	wantPromo := p.PromoIdlePower * p.PromoIdleDur.Seconds()
	if math.Abs(u.PromoJ-wantPromo) > 1e-9 {
		t.Fatalf("large transfer should pay the full promotion: %.3f want %.3f", u.PromoJ, wantPromo)
	}
	if math.Abs(u.TailJ-p.FullTailEnergy()) > 1e-9 {
		t.Fatalf("large transfer should leave the full tail: %.3f", u.TailJ)
	}
}

func TestFACHHotDCHOverridesSharedChannel(t *testing.T) {
	// A small transfer arriving while the dedicated channel is hot rides
	// it (no reason to drop to the slow shared channel).
	p := Profile3GWithFACH(4096)
	r := New(p)
	end := r.Transfer(0, 100<<10, "app")          // big: DCH
	r.Transfer(end.Add(time.Second), 2048, "ads") // small, DCH still hot
	r.Flush()
	ads := r.UsageOf("ads")
	wantXfer := p.ActivePower * p.TransferDuration(2048).Seconds()
	if math.Abs(ads.TransferJ-wantXfer) > 1e-9 {
		t.Fatalf("hot-DCH small transfer should use DCH: %.4f want %.4f", ads.TransferJ, wantXfer)
	}
	if ads.PromoJ != 0 {
		t.Fatalf("no promotion expected, got %.4f", ads.PromoJ)
	}
	// And it leaves the full DCH tail.
	if math.Abs(ads.TailJ-p.FullTailEnergy()) > 1e-9 {
		t.Fatalf("tail %.4f want %.4f", ads.TailJ, p.FullTailEnergy())
	}
}

func TestFACHBackToBackSharedChannel(t *testing.T) {
	// Consecutive small transfers within the low tail stay on the shared
	// channel: no promotions after the first, low-power tails throughout.
	p := Profile3GWithFACH(4096)
	r := New(p)
	at := simclock.Time(0)
	for i := 0; i < 5; i++ {
		end := r.Transfer(at, 1024, "ads")
		at = end.Add(3 * time.Second) // within the 12 s low tail
	}
	r.Flush()
	u := r.UsageOf("ads")
	wantPromo := p.PromoLowPower * p.PromoLowDur.Seconds() // only the first
	if math.Abs(u.PromoJ-wantPromo) > 1e-9 {
		t.Fatalf("promo %.4f want %.4f", u.PromoJ, wantPromo)
	}
	// Tails: 4 truncated (3 s at low power) + 1 full low tail.
	wantTail := 4*p.TailLowPower*3 + p.TailLowPower*p.TailLowDur.Seconds()
	if math.Abs(u.TailJ-wantTail) > 1e-9 {
		t.Fatalf("tail %.4f want %.4f", u.TailJ, wantTail)
	}
}

func TestFACHGapToIdleRampsAgain(t *testing.T) {
	p := Profile3GWithFACH(4096)
	r := New(p)
	end := r.Transfer(0, 1024, "ads")
	// Far beyond the low tail: radio idle; next small transfer ramps to
	// the shared channel again (cheap promo).
	r.Transfer(end.Add(time.Hour), 1024, "ads")
	r.Flush()
	u := r.UsageOf("ads")
	wantPromo := 2 * p.PromoLowPower * p.PromoLowDur.Seconds()
	if math.Abs(u.PromoJ-wantPromo) > 1e-9 {
		t.Fatalf("promo %.4f want %.4f", u.PromoJ, wantPromo)
	}
}

func TestFACHAdRefreshScenario(t *testing.T) {
	// The ablation the profile exists for: a quiet app's 30 s ad refresh
	// cycle is much cheaper when ads ride the shared channel, but still
	// far from free — bulk prefetch remains the winner.
	cost := func(p Profile) float64 {
		r := New(p)
		at := simclock.Time(0)
		for i := 0; i < 20; i++ {
			r.Transfer(at, 2048, "ads")
			at = at.Add(30 * time.Second)
		}
		r.Flush()
		return r.UsageOf("ads").TotalJ() / 20
	}
	dch := cost(Profile3G())
	fach := cost(Profile3GWithFACH(4096))
	bulk := Profile3G().BatchedTransferEnergy(2048, 20) / 20
	if !(bulk < fach && fach < dch) {
		t.Fatalf("want bulk (%.2f) < FACH (%.2f) < DCH (%.2f) J/ad", bulk, fach, dch)
	}
}
