// Package radio models the energy consumed by a phone's network radio.
//
// The paper's measurement study hinges on the "tail energy" problem:
// cellular radios remain in high-power states for many seconds after a
// transfer completes (RRC inactivity timers), so a tiny periodic ad
// download costs far more energy than its byte count suggests, and
// batching transfers amortizes one tail across many ads.
//
// The model is a generic three-phase state machine that covers 3G
// (IDLE/FACH/DCH), LTE (IDLE/CONNECTED with a DRX tail), and WiFi
// (negligible tail):
//
//	IDLE --promotion--> ACTIVE --T_high--> TAIL_LOW --T_low--> IDLE
//
// A transfer runs in ACTIVE at ActivePower. When it ends, the radio
// holds a high-power tail (TailHighPower for TailHighDur; for 3G this is
// the DCH inactivity window) followed by a low-power tail (FACH), then
// drops to idle. A transfer arriving mid-tail skips part or all of the
// promotion and truncates the previous transfer's tail.
//
// Energy attribution follows the convention of the measurement
// literature the paper builds on: each transfer is charged for the
// promotion it triggers, its own transmission, and the tail it leaves
// behind — truncated if a later transfer re-wakes the radio first.
// Attribution is per-owner (e.g. "ads" vs "app") so the T1 breakdown
// (ad share of communication energy) is exact.
package radio

import (
	"fmt"
	"time"
)

// Tech identifies the radio technology of a profile.
type Tech int

const (
	Tech3G Tech = iota
	TechLTE
	TechWiFi
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case TechLTE:
		return "LTE"
	case TechWiFi:
		return "WiFi"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Profile holds the power/timer constants of one radio technology.
// Powers are in watts, durations in wall-clock time. The defaults below
// follow the 3G/LTE power-model literature the paper relies on
// (Balasubramanian et al., IMC'09; Huang et al., MobiSys'12).
type Profile struct {
	Name string
	Tech Tech

	// ActivePower is drawn while bits are on the air (3G DCH, LTE
	// CONNECTED, WiFi active).
	ActivePower float64

	// Tail phase 1: high-power inactivity window after a transfer
	// (3G DCH hold, LTE DRX tail, WiFi turnaround).
	TailHighPower float64
	TailHighDur   time.Duration

	// Tail phase 2: low-power intermediate state (3G FACH). Zero for
	// technologies without one.
	TailLowPower float64
	TailLowDur   time.Duration

	// Promotion from IDLE to ACTIVE (signalling ramp).
	PromoIdlePower float64
	PromoIdleDur   time.Duration

	// Promotion from the low tail state to ACTIVE (3G FACH→DCH); cheaper
	// and faster than a cold promotion.
	PromoLowPower float64
	PromoLowDur   time.Duration

	// Link characteristics used to turn bytes into air time.
	ThroughputBps float64
	LatencyRTT    time.Duration

	// FACHThresholdBytes, when positive, enables the shared-channel
	// path for small transfers (3G FACH / RACH): a transfer of at most
	// this many bytes that finds the radio in IDLE or the low tail state
	// runs on the shared channel at TailLowPower with FACHThroughputBps,
	// needs only the cheap PromoLow ramp from idle, and leaves only the
	// low-power tail behind. Zero disables the path (the default; it is
	// an ablation in the experiments).
	FACHThresholdBytes int64

	// FACHThroughputBps is the shared-channel data rate (typically an
	// order of magnitude below the dedicated channel).
	FACHThroughputBps float64
}

// Profile3G returns the default 3G (UMTS) profile.
func Profile3G() Profile {
	return Profile{
		Name:           "3G",
		Tech:           Tech3G,
		ActivePower:    0.800,
		TailHighPower:  0.800, // DCH held at full power during T1
		TailHighDur:    5 * time.Second,
		TailLowPower:   0.460, // FACH
		TailLowDur:     12 * time.Second,
		PromoIdlePower: 0.700,
		PromoIdleDur:   2 * time.Second,
		PromoLowPower:  0.600,
		PromoLowDur:    1500 * time.Millisecond,
		ThroughputBps:  1e6,
		LatencyRTT:     200 * time.Millisecond,
	}
}

// ProfileLTE returns the default LTE profile.
func ProfileLTE() Profile {
	return Profile{
		Name:           "LTE",
		Tech:           TechLTE,
		ActivePower:    1.210,
		TailHighPower:  1.060, // continuous-reception + DRX tail average
		TailHighDur:    11500 * time.Millisecond,
		TailLowPower:   0,
		TailLowDur:     0,
		PromoIdlePower: 1.210,
		PromoIdleDur:   260 * time.Millisecond,
		PromoLowPower:  1.210,
		PromoLowDur:    260 * time.Millisecond,
		ThroughputBps:  10e6,
		LatencyRTT:     70 * time.Millisecond,
	}
}

// ProfileWiFi returns the default WiFi profile (associated, PSM).
func ProfileWiFi() Profile {
	return Profile{
		Name:           "WiFi",
		Tech:           TechWiFi,
		ActivePower:    0.700,
		TailHighPower:  0.700,
		TailHighDur:    240 * time.Millisecond,
		TailLowPower:   0,
		TailLowDur:     0,
		PromoIdlePower: 0.700,
		PromoIdleDur:   100 * time.Millisecond,
		PromoLowPower:  0.700,
		PromoLowDur:    0,
		ThroughputBps:  25e6,
		LatencyRTT:     50 * time.Millisecond,
	}
}

// Validate checks the profile for internally consistent constants.
func (p Profile) Validate() error {
	switch {
	case p.ActivePower <= 0:
		return fmt.Errorf("radio: profile %q: ActivePower must be positive", p.Name)
	case p.ThroughputBps <= 0:
		return fmt.Errorf("radio: profile %q: ThroughputBps must be positive", p.Name)
	case p.TailHighDur < 0 || p.TailLowDur < 0 || p.PromoIdleDur < 0 || p.PromoLowDur < 0 || p.LatencyRTT < 0:
		return fmt.Errorf("radio: profile %q: negative duration", p.Name)
	case p.TailHighPower < 0 || p.TailLowPower < 0 || p.PromoIdlePower < 0 || p.PromoLowPower < 0:
		return fmt.Errorf("radio: profile %q: negative power", p.Name)
	case p.FACHThresholdBytes < 0 || p.FACHThroughputBps < 0:
		return fmt.Errorf("radio: profile %q: negative FACH parameters", p.Name)
	}
	return nil
}

// TransferDuration returns the air time of a transfer of the given size:
// one round trip of latency plus serialization at link throughput.
func (p Profile) TransferDuration(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	ser := time.Duration(float64(bytes*8) / p.ThroughputBps * float64(time.Second))
	return p.LatencyRTT + ser
}

// FACHTransferDuration returns the air time of a small transfer on the
// shared channel.
func (p Profile) FACHTransferDuration(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	tput := p.FACHThroughputBps
	if tput <= 0 {
		tput = p.ThroughputBps
	}
	ser := time.Duration(float64(bytes*8) / tput * float64(time.Second))
	return p.LatencyRTT + ser
}

// FACHEligible reports whether a transfer of the given size may use the
// shared channel under this profile.
func (p Profile) FACHEligible(bytes int64) bool {
	return p.FACHThresholdBytes > 0 && bytes <= p.FACHThresholdBytes && p.TailLowDur > 0
}

// FACHTailEnergy returns the energy of the low-power-only tail left by a
// shared-channel transfer, truncated at gap.
func (p Profile) FACHTailEnergy(gap time.Duration) float64 {
	if gap <= 0 {
		return 0
	}
	if gap >= p.TailLowDur {
		return p.TailLowPower * p.TailLowDur.Seconds()
	}
	return p.TailLowPower * gap.Seconds()
}

// Profile3GWithFACH returns the 3G profile with the shared-channel path
// enabled for transfers up to threshold bytes (the ablation profile).
func Profile3GWithFACH(threshold int64) Profile {
	p := Profile3G()
	p.FACHThresholdBytes = threshold
	p.FACHThroughputBps = 100e3 // ~100 kbps shared channel
	return p
}

// TailDur returns the total tail duration (both phases).
func (p Profile) TailDur() time.Duration { return p.TailHighDur + p.TailLowDur }

// FullTailEnergy returns the energy of a complete, untruncated tail.
func (p Profile) FullTailEnergy() float64 {
	return p.TailHighPower*p.TailHighDur.Seconds() + p.TailLowPower*p.TailLowDur.Seconds()
}

// TailEnergyAfter returns the tail energy consumed when the radio goes
// quiet for gap before the next transfer (or forever, if gap exceeds the
// tail). This is the truncated-tail charge for the preceding transfer.
func (p Profile) TailEnergyAfter(gap time.Duration) float64 {
	if gap <= 0 {
		return 0
	}
	if gap >= p.TailDur() {
		return p.FullTailEnergy()
	}
	if gap <= p.TailHighDur {
		return p.TailHighPower * gap.Seconds()
	}
	return p.TailHighPower*p.TailHighDur.Seconds() + p.TailLowPower*(gap-p.TailHighDur).Seconds()
}

// IsolatedTransferEnergy returns the full cost of one transfer performed
// with the radio cold: promotion + transmission + complete tail. This is
// the per-ad cost in the status-quo (on-demand) architecture when ads
// arrive farther apart than the tail.
func (p Profile) IsolatedTransferEnergy(bytes int64) float64 {
	promo := p.PromoIdlePower * p.PromoIdleDur.Seconds()
	xfer := p.ActivePower * p.TransferDuration(bytes).Seconds()
	return promo + xfer + p.FullTailEnergy()
}

// BatchedTransferEnergy returns the cost of n back-to-back transfers of
// the given size sharing one promotion and one tail — the bulk-prefetch
// cost the paper's design exploits.
func (p Profile) BatchedTransferEnergy(bytes int64, n int) float64 {
	if n <= 0 {
		return 0
	}
	promo := p.PromoIdlePower * p.PromoIdleDur.Seconds()
	xfer := p.ActivePower * p.TransferDuration(bytes).Seconds() * float64(n)
	return promo + xfer + p.FullTailEnergy()
}
