package shard

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/adserver"
	"repro/internal/auction"
	"repro/internal/predict"
	"repro/internal/simclock"
)

type constPredictor struct{ est predict.Estimate }

func (c constPredictor) Name() string                            { return "const" }
func (c constPredictor) Predict(predict.Period) predict.Estimate { return c.est }
func (c constPredictor) Observe(predict.Period, int)             {}

func mkExchange(int) (*auction.Exchange, error) {
	return auction.NewExchange([]auction.Campaign{
		{ID: 0, BidCPM: 2000, BudgetUSD: 1e6},
		{ID: 1, BidCPM: 1000, BudgetUSD: 1e6},
	}, 0.0001)
}

func testPool(t *testing.T, shards, clients int) *Pool {
	t.Helper()
	cfg := adserver.DefaultConfig()
	cfg.Period = time.Hour
	cfg.Overbook.FixedReplicas = 1
	cfg.Overbook.AdmissionEpsilon = 0.45
	ids := make([]int, clients)
	for i := range ids {
		ids[i] = i
	}
	p, err := New(shards, cfg, ids, mkExchange, func(int) predict.Predictor {
		return constPredictor{est: predict.Estimate{Slots: 2, Mean: 2, NoShowProb: 0.1}}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRouteStableAndBalanced(t *testing.T) {
	const n = 4
	counts := make([]int, n)
	for id := 0; id < 4000; id++ {
		s := Route(id, n)
		if s != Route(id, n) {
			t.Fatal("routing not stable")
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("shard %d imbalanced: %d of 4000 (want ~1000)", i, c)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, adserver.DefaultConfig(), nil, mkExchange, nil, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	bad := func(int) (*auction.Exchange, error) { return nil, auctionErr }
	if _, err := New(2, adserver.DefaultConfig(), []int{1}, bad,
		func(int) predict.Predictor { return constPredictor{} }, nil); err == nil {
		t.Fatal("exchange error swallowed")
	}
}

var auctionErr = errFake("boom")

type errFake string

func (e errFake) Error() string { return string(e) }

func TestPoolRoundMatchesSingleServerTotals(t *testing.T) {
	const clients = 40
	single := testPool(t, 1, clients)
	sharded := testPool(t, 4, clients)

	b1, s1 := single.StartPeriod(0, predict.Period{})
	b4, s4 := sharded.StartPeriod(0, predict.Period{})
	// With uniform clients and per-shard admission the totals are close
	// but not identical (admission quantiles are per-shard); check the
	// conservation identities rather than exact equality.
	if s4.Sold < s1.Sold/2 || s4.Sold > s1.Sold*2 {
		t.Fatalf("sharded sold %d wildly off single %d", s4.Sold, s1.Sold)
	}
	count := func(bs []adserver.Bundle) int {
		total := 0
		for _, b := range bs {
			total += len(b.Ads)
		}
		return total
	}
	if count(b4) != s4.Replicas || count(b1) != s1.Replicas {
		t.Fatal("bundle/replica conservation broken")
	}
	// Every bundle goes to a client the shard owns.
	for _, b := range b4 {
		if sharded.ShardFor(b.Client) == nil {
			t.Fatalf("bundle for unrouted client %d", b.Client)
		}
	}
}

func TestPoolLifecycleAndLedger(t *testing.T) {
	p := testPool(t, 3, 30)
	if p.Shards() != 3 {
		t.Fatalf("shards %d", p.Shards())
	}
	bundles, stats := p.StartPeriod(0, predict.Period{})
	if stats.Sold == 0 || len(bundles) == 0 {
		t.Fatalf("inert round: %+v", stats)
	}
	// Display one ad per shard via the owning shard.
	displays := 0
	seen := map[int]bool{}
	for _, b := range bundles {
		shardIdx := Route(b.Client, 3)
		if seen[shardIdx] {
			continue
		}
		seen[shardIdx] = true
		srv := p.ShardFor(b.Client)
		if srv == nil {
			t.Fatalf("no shard for client %d", b.Client)
		}
		if err := srv.ReportDisplay(b.Ads[0].ID, simclock.At(time.Minute)); err != nil {
			t.Fatal(err)
		}
		displays++
	}
	expired := p.EndPeriod(simclock.At(100*time.Hour), predict.Period{})
	l := p.Ledger()
	if int(l.Billed) != displays {
		t.Fatalf("billed %d want %d", l.Billed, displays)
	}
	if expired != stats.Sold-displays || int(l.Violations) != expired {
		t.Fatalf("expired %d violations %d sold %d displays %d",
			expired, l.Violations, stats.Sold, displays)
	}
	if p.ShardFor(99999) != nil {
		t.Fatal("unknown client routed")
	}
	if p.Shard(0) == nil {
		t.Fatal("shard accessor broken")
	}
}

func TestPoolSavePredictors(t *testing.T) {
	cfg := adserver.DefaultConfig()
	ids := []int{0, 1, 2, 3}
	p, err := New(2, cfg, ids, mkExchange, func(int) predict.Predictor {
		return predict.NewPercentileHistogram(0.9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SavePredictors(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}
}

// Property: routing is a partition — every client maps to exactly one
// shard in range, and the map is independent of insertion order.
func TestRoutePartitionProperty(t *testing.T) {
	f := func(id int32, n uint8) bool {
		shards := int(n%16) + 1
		s := Route(int(id), shards)
		return s >= 0 && s < shards && s == Route(int(id), shards)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexForMatchesMembership(t *testing.T) {
	p := testPool(t, 4, 40)
	for id := 0; id < 40; id++ {
		i := p.IndexFor(id)
		if p.Shard(i) != p.ShardFor(id) {
			t.Fatalf("client %d: IndexFor %d disagrees with ShardFor", id, i)
		}
	}
	// Unknown clients still route deterministically via the stable hash.
	if got, want := p.IndexFor(99999), Route(99999, 4); got != want {
		t.Fatalf("unknown client routed to %d want %d", got, want)
	}
}

func TestPoolPredictorsRoundTrip(t *testing.T) {
	mk := func() *Pool {
		cfg := adserver.DefaultConfig()
		ids := []int{0, 1, 2, 3, 4, 5}
		p, err := New(3, cfg, ids, mkExchange, func(int) predict.Predictor {
			return predict.NewPercentileHistogram(0.9)
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	src := mk()
	// Train distinct per-shard state so the round trip is non-trivial.
	for i := 0; i < src.Shards(); i++ {
		for round := 0; round < 5; round++ {
			srv := src.Shard(i)
			srv.StartPeriod(0, predict.Period{Index: round})
			srv.EndPeriod(simclock.At(time.Hour), predict.Period{Index: round})
		}
	}
	var buf bytes.Buffer
	if err := src.SavePredictors(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.String()

	dst := mk()
	if err := dst.LoadPredictors(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Loaded pool must re-serialize to the identical snapshot.
	var buf2 bytes.Buffer
	if err := dst.SavePredictors(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != snapshot {
		t.Fatal("predictor snapshot does not round-trip through the pool")
	}
	// Truncated input must fail loudly, not silently half-load.
	if err := dst.LoadPredictors(bytes.NewReader(buf.Bytes()[:buf.Len()/4])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestPoolOpsAggregates(t *testing.T) {
	p := testPool(t, 2, 20)
	if p.Ops().Rounds != 0 {
		t.Fatal("fresh pool reports rounds")
	}
	p.StartPeriod(0, predict.Period{})
	// Shards only observe a round when they saw actual slots.
	for id := 0; id < 20; id++ {
		srv := p.ShardFor(id)
		srv.ObserveSlot(id)
		srv.ObserveSlot(id)
	}
	p.EndPeriod(simclock.At(time.Hour), predict.Period{})
	ops := p.Ops()
	if ops.Rounds != 2 {
		t.Fatalf("rounds %d want 2 (one per shard)", ops.Rounds)
	}
	// Weighted mean of equal per-shard errors equals the per-shard error.
	s0 := p.Shard(0).Ops()
	if ops.Rounds == 2 && s0.Rounds == 1 {
		want := (s0.ForecastErrP50 + p.Shard(1).Ops().ForecastErrP50) / 2
		if diff := ops.ForecastErrP50 - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("aggregate p50 %v want %v", ops.ForecastErrP50, want)
		}
	}
}

// A snapshot from a pool with a different shard count must be rejected:
// the stable partition means shard i owns different clients in each
// layout, so a silent load would pair predictors with the wrong shards.
func TestPoolLoadPredictorsShardCountMismatch(t *testing.T) {
	mk := func(n int) *Pool {
		p, err := New(n, adserver.DefaultConfig(), []int{0, 1, 2, 3}, mkExchange,
			func(int) predict.Predictor { return predict.NewPercentileHistogram(0.9) }, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	var buf bytes.Buffer
	if err := mk(4).SavePredictors(&buf); err != nil {
		t.Fatal(err)
	}
	if err := mk(2).LoadPredictors(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("4-shard snapshot accepted by 2-shard pool")
	}
	if err := mk(4).LoadPredictors(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("same-layout snapshot rejected: %v", err)
	}
}
