// Package shard scales the ad service horizontally: clients are
// partitioned across independent ad-server shards by a stable hash, each
// shard owning its clients' predictors, assignments, claims and
// frequency caps. Because replicas of one impression only ever live on
// clients of the shard that sold it, shards share nothing and scale
// linearly — the deployment story behind the T2 throughput table.
//
// The trade-off is pooling: overbooked replication and the rescue path
// only see one shard's clients, so very small shards lose some of the
// statistical multiplexing a single big server enjoys (the X8 experiment
// measures this).
package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/adserver"
	"repro/internal/auction"
	"repro/internal/predict"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Pool is a set of ad-server shards behind a stable client partition.
type Pool struct {
	shards []*adserver.Server
	// byClient caches the routing decision per known client.
	byClient map[int]int
}

// Route returns the shard index a client maps to among n shards.
func Route(clientID, n int) int {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(int64(clientID))
	for i := range buf {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}

// New partitions clientIDs across n shards. Each shard gets its own
// exchange built by mkExchange (campaign budgets are per-shard: a real
// deployment splits campaign budgets across shards the same way).
func New(n int, cfg adserver.Config, clientIDs []int,
	mkExchange func(shard int) (*auction.Exchange, error),
	mkPredictor func(clientID int) predict.Predictor,
	hints func(clientID int) []trace.Category) (*Pool, error) {

	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	members := make([][]int, n)
	byClient := make(map[int]int, len(clientIDs))
	for _, id := range clientIDs {
		s := Route(id, n)
		members[s] = append(members[s], id)
		byClient[id] = s
	}
	p := &Pool{shards: make([]*adserver.Server, n), byClient: byClient}
	for i := 0; i < n; i++ {
		ex, err := mkExchange(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		srv, err := adserver.New(cfg, ex, members[i], mkPredictor, hints)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		p.shards[i] = srv
	}
	return p, nil
}

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// SetTenancy installs the client→tenant attribution on every shard
// (nil restores legacy single-tenant serving). Call between requests
// only, like the other mutating methods.
func (p *Pool) SetTenancy(tenantOf func(clientID int) string) {
	for _, s := range p.shards {
		s.SetTenancy(tenantOf)
	}
}

// LedgerOf returns one tenant's ledger view summed across shards.
func (p *Pool) LedgerOf(tenant string) auction.Ledger {
	var total auction.Ledger
	for _, s := range p.shards {
		l := s.Exchange().LedgerOf(tenant)
		total.Sold += l.Sold
		total.BilledUSD += l.BilledUSD
		total.Billed += l.Billed
		total.FreeUSD += l.FreeUSD
		total.FreeShows += l.FreeShows
		total.Violations += l.Violations
		total.ViolatedUSD += l.ViolatedUSD
		total.PotentialUSD += l.PotentialUSD
	}
	return total
}

// OpenBookOf returns one tenant's open book summed across shards.
func (p *Pool) OpenBookOf(tenant string) int {
	n := 0
	for _, s := range p.shards {
		n += s.OpenBookOf(tenant)
	}
	return n
}

// Shard returns shard i (for tests and per-shard inspection).
func (p *Pool) Shard(i int) *adserver.Server { return p.shards[i] }

// ShardFor returns the shard owning a client (nil if unknown).
func (p *Pool) ShardFor(clientID int) *adserver.Server {
	i, ok := p.byClient[clientID]
	if !ok {
		return nil
	}
	return p.shards[i]
}

// IndexFor returns the index of the shard owning a client. Unknown
// clients fall back to the stable hash route, so lookups for ids that
// joined after partitioning still map deterministically.
func (p *Pool) IndexFor(clientID int) int {
	if i, ok := p.byClient[clientID]; ok {
		return i
	}
	return Route(clientID, len(p.shards))
}

// StartPeriod runs the prefetch round on every shard concurrently (each
// shard is single-threaded internally; shards share nothing). Bundles
// from all shards are concatenated; stats are summed.
func (p *Pool) StartPeriod(now simclock.Time, per predict.Period) ([]adserver.Bundle, adserver.PeriodStats) {
	type out struct {
		bundles []adserver.Bundle
		stats   adserver.PeriodStats
	}
	outs := make([]out, len(p.shards))
	var wg sync.WaitGroup
	for i, s := range p.shards {
		wg.Add(1)
		go func(i int, s *adserver.Server) {
			defer wg.Done()
			b, st := s.StartPeriod(now, per)
			outs[i] = out{b, st}
		}(i, s)
	}
	wg.Wait()
	var bundles []adserver.Bundle
	var stats adserver.PeriodStats
	for _, o := range outs {
		bundles = append(bundles, o.bundles...)
		stats.PredictedSlots += o.stats.PredictedSlots
		stats.Admitted += o.stats.Admitted
		stats.Sold += o.stats.Sold
		stats.Placed += o.stats.Placed
		stats.Replicas += o.stats.Replicas
	}
	sort.Slice(bundles, func(i, j int) bool { return bundles[i].Client < bundles[j].Client })
	return bundles, stats
}

// EndPeriod closes the round on every shard concurrently and returns the
// total expirations.
func (p *Pool) EndPeriod(now simclock.Time, per predict.Period) int {
	expired := make([]int, len(p.shards))
	var wg sync.WaitGroup
	for i, s := range p.shards {
		wg.Add(1)
		go func(i int, s *adserver.Server) {
			defer wg.Done()
			expired[i] = s.EndPeriod(now, per)
		}(i, s)
	}
	wg.Wait()
	total := 0
	for _, n := range expired {
		total += n
	}
	return total
}

// Ledger returns the ledgers of all shards summed.
func (p *Pool) Ledger() auction.Ledger {
	var total auction.Ledger
	for _, s := range p.shards {
		l := s.Exchange().Ledger()
		total.Sold += l.Sold
		total.BilledUSD += l.BilledUSD
		total.Billed += l.Billed
		total.FreeUSD += l.FreeUSD
		total.FreeShows += l.FreeShows
		total.Violations += l.Violations
		total.ViolatedUSD += l.ViolatedUSD
		total.PotentialUSD += l.PotentialUSD
	}
	return total
}

// SavePredictors persists every shard's predictor state (concatenated
// JSON documents, one per shard).
func (p *Pool) SavePredictors(w io.Writer) error {
	for i, s := range p.shards {
		if err := s.SavePredictors(w); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// LoadPredictors restores state saved by SavePredictors: one JSON
// document per shard, in shard order. The snapshot must come from a
// pool with the same shard count (the partition is stable, so the same
// client set + shard count reproduces the same membership); a snapshot
// with a different document count is rejected, since loading it would
// silently pair shards with the wrong client subsets.
func (p *Pool) LoadPredictors(r io.Reader) error {
	dec := json.NewDecoder(r)
	for i, s := range p.shards {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return fmt.Errorf("shard %d: decoding predictor snapshot (snapshot from a smaller pool?): %w", i, err)
		}
		if err := s.LoadPredictors(bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("shard: snapshot has more than %d shard documents (saved by a larger pool?)", len(p.shards))
	}
	return nil
}

// poolState is the pool's serializable form: one full adserver.State
// per shard, in shard order.
type poolState struct {
	Shards []*adserver.State `json:"shards"`
}

// Snapshot writes every shard's complete state (exchange, open book,
// claims, frequency caps, predictors — see adserver.State) as one JSON
// document, for the durability layer's full-state checkpoints.
func (p *Pool) Snapshot(w io.Writer) error {
	st := poolState{Shards: make([]*adserver.State, len(p.shards))}
	for i, s := range p.shards {
		ss, err := s.Snapshot()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		st.Shards[i] = ss
	}
	return json.NewEncoder(w).Encode(st)
}

// Restore overwrites every shard with state saved by Snapshot. Like
// LoadPredictors, a snapshot from a pool with a different shard count
// is rejected outright — the stable partition means shard i's state is
// only meaningful for shard i of an equally sized pool.
func (p *Pool) Restore(r io.Reader) error {
	var st poolState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("shard: decoding pool snapshot: %w", err)
	}
	if len(st.Shards) != len(p.shards) {
		return fmt.Errorf("shard: snapshot has %d shards, pool has %d", len(st.Shards), len(p.shards))
	}
	for i, s := range p.shards {
		if err := s.Restore(st.Shards[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Ops aggregates the shards' monitoring snapshots: rounds are summed
// and the forecast-error quantiles are rounds-weighted means of the
// per-shard streams. Safe to call concurrently with period processing
// (adserver.Ops is lock-isolated from the serving path).
func (p *Pool) Ops() adserver.OpsStats {
	var out adserver.OpsStats
	for _, s := range p.shards {
		st := s.Ops()
		out.Rounds += st.Rounds
		out.ForecastErrP50 += float64(st.Rounds) * st.ForecastErrP50
		out.ForecastErrP95 += float64(st.Rounds) * st.ForecastErrP95
	}
	if out.Rounds > 0 {
		out.ForecastErrP50 /= float64(out.Rounds)
		out.ForecastErrP95 /= float64(out.Rounds)
	}
	return out
}
