// Benchmarks regenerating every table and figure of the evaluation
// (one per experiment, run at a reduced scale so `go test -bench=.`
// finishes in minutes), plus micro-benchmarks of the hot paths the T2
// scalability table rests on.
//
// Shape, not absolute numbers, is the reproduction target; run
// `go run ./cmd/experiments -exp all -scale medium` for the real tables.
package adprefetch_test

import (
	"testing"
	"time"

	adprefetch "repro"
	"repro/internal/auction"
	"repro/internal/overbook"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// benchScale is smaller than experiments.Small so every figure can run
// inside a benchmark iteration.
func benchScale() adprefetch.Scale {
	s := adprefetch.ScaleSmall()
	s.Users = 30
	s.Days = 6
	s.WarmupDays = 3
	return s
}

// runExperiment is the shared driver: regenerate one table per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := adprefetch.RunExperiment(id, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1AdEnergyShare(b *testing.B)  { runExperiment(b, "t1") }
func BenchmarkFigure1TailEnergy(b *testing.B)    { runExperiment(b, "f1") }
func BenchmarkFigure2TraceStats(b *testing.B)    { runExperiment(b, "f2") }
func BenchmarkFigure3Predictors(b *testing.B)    { runExperiment(b, "f3") }
func BenchmarkFigure4Percentile(b *testing.B)    { runExperiment(b, "f4") }
func BenchmarkFigure5SLA(b *testing.B)           { runExperiment(b, "f5") }
func BenchmarkFigure6RevenueLoss(b *testing.B)   { runExperiment(b, "f6") }
func BenchmarkFigure7EnergySavings(b *testing.B) { runExperiment(b, "f7") }
func BenchmarkFigure8Tradeoff(b *testing.B)      { runExperiment(b, "f8") }
func BenchmarkFigure9Deadline(b *testing.B)      { runExperiment(b, "f9") }
func BenchmarkTable2Throughput(b *testing.B)     { runExperiment(b, "t2") }

// Extension experiments (see DESIGN.md §4).
func BenchmarkExtPerUserDistribution(b *testing.B) { runExperiment(b, "x1") }
func BenchmarkExtRadioGenerality(b *testing.B)     { runExperiment(b, "x2") }
func BenchmarkExtRobustness(b *testing.B)          { runExperiment(b, "x3") }
func BenchmarkExtRegularity(b *testing.B)          { runExperiment(b, "x4") }
func BenchmarkExtFACHAblation(b *testing.B)        { runExperiment(b, "x5") }
func BenchmarkExtAuctionFidelity(b *testing.B)     { runExperiment(b, "x6") }
func BenchmarkExtMixedConnectivity(b *testing.B)   { runExperiment(b, "x7") }
func BenchmarkExtShardScaling(b *testing.B)        { runExperiment(b, "x8") }

// ---------------------------------------------------------------------
// Hot-path micro-benchmarks (the substance behind Table 2).

func BenchmarkRadioTransfer(b *testing.B) {
	r := radio.New(radio.Profile3G())
	at := simclock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end := r.Transfer(at, 2048, "ads")
		at = end.Add(3 * time.Second)
	}
}

func BenchmarkAuctionSellSlot(b *testing.B) {
	demand := auction.DefaultDemand()
	demand.BudgetImpressions = int64(b.N) + 1000
	ex, err := auction.NewExchange(demand.Generate(simclock.NewRand(1)), 0.0001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sold := ex.SellSlots(simclock.Time(i), 1, nil, time.Hour); len(sold) == 0 {
			b.Fatal("demand exhausted")
		}
	}
}

func BenchmarkAuctionBillingCycle(b *testing.B) {
	demand := auction.DefaultDemand()
	demand.BudgetImpressions = int64(b.N) + 1000
	ex, err := auction.NewExchange(demand.Generate(simclock.NewRand(1)), 0.0001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sold := ex.SellSlots(simclock.Time(i), 1, nil, time.Hour)
		if err := ex.RecordDisplay(sold[0].ID, sold[0].SoldAt.Add(time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerPlanOne(b *testing.B) {
	r := simclock.NewRand(1)
	cands := make([]*overbook.Candidate, 200)
	for i := range cands {
		cands[i] = &overbook.Candidate{
			Client:         i,
			PredictedSlots: 1 + 10*r.Float64(),
			ExpectedSlots:  1 + 8*r.Float64(),
			NoShowProb:     0.05 + 0.4*r.Float64(),
		}
	}
	cfg := overbook.DefaultConfig()
	cfg.CacheCap = 1 << 30
	p, err := overbook.NewPlanner(cfg, cands)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PlanOne()
	}
}

func BenchmarkPredictorObservePredict(b *testing.B) {
	p := predict.NewPercentileHistogram(0.9)
	r := simclock.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := predict.Period{Index: i, OfDay: i % 6, Weekend: i%7 >= 5}
		p.Observe(per, r.Poisson(5))
		if est := p.Predict(per); est.Slots < 0 {
			b.Fatal("negative estimate")
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Users = 50
	cfg.Days = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	cfg := adprefetch.DefaultSimConfig(adprefetch.ModePredictive)
	cfg.TraceCfg.Users = 30
	cfg.TraceCfg.Days = 6
	cfg.WarmupDays = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := adprefetch.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.AdEnergyPerUserDay(), "adJ/user/day")
			b.ReportMetric(100*res.Ledger.ViolationRate(), "SLAviol%")
		}
	}
}
