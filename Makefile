# Tier-1: everything must build, vet clean, and pass.
test:
	go build ./...
	go vet ./...
	go test ./...

# Race tier: the concurrent serving path (sharded transport, HTTP
# replay, shard pool, lock-isolated ops metrics, the obs registry)
# under the race detector. Includes the 32-goroutine stress test in
# internal/transport/race_test.go.
race:
	go test -race -timeout 30m ./internal/transport ./internal/sim ./internal/adserver ./internal/shard ./internal/obs ./internal/wal ./internal/cluster

# Observability tier: the metrics registry (atomic counters/gauges,
# log-bucketed histograms, Prometheus exposition) under the race
# detector — 32 goroutines hammering one registry with concurrent
# scrapes, plus the exposition golden and the histogram-vs-P2 quantile
# agreement checks.
obs:
	go test -race -count=1 ./internal/obs

# Stream tier: the streaming (lazy-trace, event-driven) replay. Lazy
# derivation properties (UserAt == Generate byte-for-byte, order- and
# concurrency-independence, the UserAt fuzz seeds), the wake-heap
# ordering invariants, the light-RNG stream split, and the streaming
# differential suite: a streaming replay must match the materialized
# replay on every accounting observable — fault-free and under seeded
# chaos, on both the sequential and the batched wire. The bounded-
# memory regression (100k devices under a pinned heap budget) rides in
# the same run.
stream:
	go test -count=1 -run 'TestUserAt|TestStreamConcurrent|TestStreamMetadata|TestValidateRejects|FuzzUserAt' ./internal/trace
	go test -count=1 -run 'TestWakeHeap|TestLightRand' ./internal/simclock
	go test -count=1 -timeout 30m -run 'TestStream' ./internal/sim

# Mega: a million simulated devices with the diurnal two-peak load
# through the sharded serving path — the headline streaming run. Lazy
# trace derivation keeps the heap bounded; expect minutes of wall time
# on one core (see README "Million-device runs" for the envelope).
mega:
	go run ./cmd/adloadgen -users 1000000 -days 1 -shards 4 -batched -energy -lean

# Throughput scaling of the sharded serving path (1 vs 2 vs 4 shards),
# the wake-up round-trip comparison (sequential vs batched wire), the
# cluster routing tier's proxy overhead (1 vs 3 nodes), and the live
# shard-migration handoff (clients/s transferred, serving p99 while a
# handoff holds the rebalance lock).
bench:
	go test -bench 'ShardedServing|WakeUp' -benchtime 2s -run '^$$' ./internal/transport
	go test -bench 'ClusterRoundTrip|MigrationHandoff' -benchtime 2s -run '^$$' ./internal/cluster
	go test -bench 'StreamingReplay' -benchtime 1x -run '^$$' ./internal/sim

# The serving-path benchmark sweep piped through tools/benchjson. Shared
# by benchsnap (record a new BENCH_<n>.json trajectory point) and
# benchgate (fail if ns/op or allocs/op regress >10% vs the newest
# committed point). Not part of tier-1: benchmark numbers are
# machine-sensitive, so the gate is run deliberately, on one machine.
BENCH_SWEEP = go test -bench 'SequentialServing|BatchCodec|ShardedServing|WakeUp' -benchtime 1s -run '^$$' ./internal/transport && \
	go test -bench 'TenantAdmission' -benchtime 1s -run '^$$' ./internal/tenant && \
	go test -bench 'GroupCommit' -benchtime 1s -run '^$$' ./internal/wal && \
	go test -bench 'ClusterRoundTrip|MigrationHandoff' -benchtime 1s -run '^$$' ./internal/cluster && \
	go test -bench 'StreamingReplay' -benchtime 2x -run '^$$' ./internal/sim

benchsnap:
	{ $(BENCH_SWEEP); } | go run ./tools/benchjson -snap

benchgate:
	{ $(BENCH_SWEEP); } | go run ./tools/benchjson -gate

# Batch tier: the coalesced wire protocol. Differential equivalence of
# the sequential and batched transports (fault-free and under chaos, at
# shards=1 and shards=4), per-sub-op idempotency properties (intra-batch
# duplicates, envelope resends, cross-path replays, partial failure),
# and the envelope fuzz seeds — now for both the JSON and the binary
# codec (binary-vs-JSON differential, golden-frame cross-pin, fault-layer
# identity agnosticism).
batch:
	go test -count=1 -run 'TestBatch|TestBinary' ./internal/transport ./internal/sim
	go test -count=1 -run 'TestBinBatchWalk|TestBatchIdentities' ./internal/faults
	go test -count=1 -run 'FuzzBatchDecode|FuzzBinaryBatchDecode' ./internal/transport

# Chaos tier: seeded fault injection (drops, 5xx, lost replies, resets,
# truncated bodies, one timed shard partition) replayed through the HTTP
# serving path at shards=1 and shards=4. Asserts ledger conservation
# (billed+violations == sold, spend == revenue), no double billing
# across retries, run-to-run determinism for a fixed seed, and the
# idempotency double-send property.
chaos:
	go test -count=1 -run 'TestChaos' ./internal/sim
	go test -count=1 -run 'TestDoubleSend|TestIdempotency|TestRetry|TestLoadShedding|TestGraceful' ./internal/transport

# Crash tier: durability and kill/restart recovery. The WAL unit suite
# (framing, corruption truncation, generation rotation, torn-tail
# fuzz seeds, group-commit coverage), the snapshot/replay round-trip and
# replay-idempotence properties, the dedup-window-straddles-restart
# regression, and the kill/restart equivalence matrix: the service
# killed mid-period, mid-batch, during the period-end sweep, in the
# group-commit window between a batched fsync and its ack, and at every
# single record position of a small run — each recovered run must match
# the uninterrupted baseline on every accounting observable.
crash:
	go test -count=1 ./internal/wal
	go test -count=1 -run 'TestCheckpoint|TestDedupWindow|TestWALReplay' ./internal/transport
	go test -count=1 -run 'TestCrash' ./internal/sim

# Cluster tier: the multi-node routing tier. Router/ring unit tests
# (placement, fan-out merge, 503 + Retry-After refusals, circuit
# open/rejoin, the background prober), node-scoped crash scheduling,
# degenerate WAL-file recovery, and the cluster differential suite: a
# cluster of N nodes behind the router must match a single process at
# shards=N on every accounting observable — fault-free, under seeded
# chaos, and across node kill/restart (double kills and a kill
# mid-period-fan-out included).
cluster:
	go test -count=1 ./internal/cluster
	go test -count=1 -run 'TestCrashSchedule' ./internal/faults
	go test -count=1 -run 'TestRecoverDegenerateFiles' ./internal/wal
	go test -count=1 -run 'TestCluster' ./internal/sim

# Migrate tier: elastic membership and live shard migration. The
# membership control plane (Plan diffs pinned exact against brute-force
# reassignment, ring shrink/grow stability, lifecycle guards, admin
# auth), the health wire-DTO goldens, and the migration differential
# suite: a cluster that grows 2→3 and drains 3→2 mid-run — rebalancing
# against live device traffic — must match the uninterrupted fixed-size
# baseline on every accounting observable, with zero client-visible
# non-2xx, fault-free, under seeded chaos, and with a node killed on a
# migration record inside the handoff window.
migrate:
	go test -count=1 -run 'TestPlan|TestMembership|TestAdmin|TestRing' ./internal/cluster
	go test -count=1 -run 'TestHealthReplyGolden' ./internal/transport
	go test -count=1 -run 'TestMigration' ./internal/sim

# Tenant tier: multi-tenant isolation. The tenant registry unit suite
# (range attribution, token-bucket refill monotonicity, validation),
# the transport-level admission contract (429 + pressure-scaled
# Retry-After from both the token bucket and the per-tenant open-book
# bound, wire/envelope tenant mismatch 403s, config-epoch idempotency,
# per-tenant ledger views partitioning the aggregate, APB2 codec
# equivalence, the client's Retry-After backoff floor), and the
# noisy-neighbor differential suite: a victim tenant beside a flooding
# aggressor must match its solo baseline exactly — ledger, SLA
# violations, per-device counters, and a bounded slot p99 — fault-free,
# under seeded chaos, through the cluster router, and across a kill on
# the config-epoch WAL record itself.
tenant:
	go test -count=1 ./internal/tenant
	go test -count=1 -run 'TestTenant|TestRetryAfterSecs|TestConfigEpoch|TestLedgerTenantViews|TestBatchTenantCodec|TestClientRetryAfterFloor|TestHealthReplyGolden' ./internal/transport
	go test -count=1 -timeout 30m -run 'TestTenant' ./internal/sim

# Aggregate correctness gate: every functional tier in one command.
# (The benchmark tiers stay separate — they are about machines, not
# logic.)
verify: test batch chaos crash cluster migrate stream tenant

# Everything: the functional gate plus the race-detector tiers. This is
# the pre-merge command; `verify` alone used to silently skip race and
# obs, which let schedule-dependent regressions through.
verify-full: verify race obs

.PHONY: test race obs bench benchsnap benchgate chaos batch crash cluster migrate stream tenant mega verify verify-full
