# Tier-1: everything must build and pass.
test:
	go build ./...
	go test ./...

# Race tier: the concurrent serving path (sharded transport, HTTP
# replay, shard pool, lock-isolated ops metrics) under the race
# detector. Includes the 32-goroutine stress test in
# internal/transport/race_test.go.
race:
	go test -race ./internal/transport ./internal/sim ./internal/adserver ./internal/shard

# Throughput scaling of the sharded serving path (1 vs 2 vs 4 shards).
bench:
	go test -bench ShardedServing -benchtime 2s -run '^$$' ./internal/transport

.PHONY: test race bench
