package adprefetch_test

import (
	"bytes"
	"strings"
	"testing"

	adprefetch "repro"
)

// These tests exercise the public facade exactly the way README tells a
// downstream user to — the integration surface of the whole library.

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := adprefetch.DefaultSimConfig(adprefetch.ModePredictive)
	cfg.TraceCfg.Users = 30
	cfg.TraceCfg.Days = 6
	cfg.WarmupDays = 3
	res, err := adprefetch.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdEnergyJ <= 0 || res.Counters.SlotsServed == 0 {
		t.Fatalf("inert result: %+v", res)
	}
	if !strings.Contains(res.String(), "predictive") {
		t.Fatalf("result string: %s", res)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	cfg := adprefetch.DefaultTraceConfig()
	cfg.Users = 10
	cfg.Days = 3
	pop, err := adprefetch.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := adprefetch.WriteTrace(&buf, pop); err != nil {
		t.Fatal(err)
	}
	got, err := adprefetch.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSessions() != pop.TotalSessions() {
		t.Fatal("round trip lost sessions")
	}
	tbl := adprefetch.CharacterizeTrace(got, adprefetch.DefaultCatalog(), adprefetch.SlotRefreshDefault)
	if len(tbl.Rows) == 0 {
		t.Fatal("empty characterization")
	}
}

func TestPublicEnergyStudy(t *testing.T) {
	cfg := adprefetch.DefaultTraceConfig()
	cfg.Users = 20
	cfg.Days = 3
	pop, err := adprefetch.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := adprefetch.MeasureEnergy(pop, adprefetch.DefaultCatalog(), adprefetch.DefaultEnergyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals()
	if share := tot.AdShareOfComm(); share < 0.3 || share > 0.95 {
		t.Fatalf("ad share of comm energy %v implausible", share)
	}
	if adprefetch.EnergyTable(rep).CSV() == "" {
		t.Fatal("empty CSV")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := adprefetch.Experiments()
	if len(ids) != 22 {
		t.Fatalf("experiments: %v", ids)
	}
	for _, id := range ids {
		if adprefetch.DescribeExperiment(id) == "" {
			t.Errorf("%s: no description", id)
		}
	}
	if _, err := adprefetch.RunExperiment("bogus", adprefetch.ScaleSmall()); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestPublicCompareModes(t *testing.T) {
	cfg := adprefetch.DefaultSimConfig(adprefetch.ModeOnDemand)
	cfg.TraceCfg.Users = 25
	cfg.TraceCfg.Days = 6
	cfg.WarmupDays = 3
	results, err := adprefetch.CompareModes(cfg,
		[]adprefetch.Mode{adprefetch.ModeOnDemand, adprefetch.ModeOracle})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].AdEnergyJ >= results[0].AdEnergyJ {
		t.Fatal("oracle should beat on-demand")
	}
	tbl := adprefetch.CompareTable("cmp", results)
	if !strings.Contains(tbl.String(), "oracle") {
		t.Fatal("table missing oracle row")
	}
}

func TestPublicEventDrivenSystem(t *testing.T) {
	ex, err := adprefetch.NewExchange([]adprefetch.Campaign{
		{ID: 0, Name: "acme", BidCPM: 2, BudgetUSD: 100},
		{ID: 1, Name: "globex", BidCPM: 1, BudgetUSD: 100},
	}, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	cfg := adprefetch.DefaultSystemConfig(adprefetch.ModeNaiveBulk)
	cfg.NaiveK = 2
	sys, err := adprefetch.NewSystem(cfg, ex, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetSelling(true)
	p := adprefetch.PeriodOf(0, cfg.Server.Period)
	deliveries, stats := sys.StartPeriod(0, p)
	if stats.Sold != 4 || len(deliveries) != 2 {
		t.Fatalf("stats %+v deliveries %v", stats, deliveries)
	}
	out, err := sys.HandleSlot(adprefetch.Minute, 0, []adprefetch.Category{"game"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatalf("outcome %+v", out)
	}
	sys.EndPeriod(2*adprefetch.Day, p)
	if ex.Ledger().Billed != 1 {
		t.Fatalf("ledger %+v", ex.Ledger())
	}
}

func TestPublicRadioProfiles(t *testing.T) {
	for _, p := range []adprefetch.RadioProfile{
		adprefetch.Profile3G(), adprefetch.ProfileLTE(), adprefetch.ProfileWiFi(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.IsolatedTransferEnergy(2048) <= 0 {
			t.Errorf("%s: no energy", p.Name)
		}
	}
	// The relationship the whole paper rests on.
	g := adprefetch.Profile3G()
	if g.BatchedTransferEnergy(2048, 10) >= 10*g.IsolatedTransferEnergy(2048) {
		t.Fatal("batching must amortize the tail")
	}
}

func TestPublicTimeHelpers(t *testing.T) {
	if adprefetch.At(0) != 0 || adprefetch.Day != 24*adprefetch.Hour {
		t.Fatal("time constants wrong")
	}
	p := adprefetch.PeriodOf(5*adprefetch.Day+adprefetch.Hour, 60*60*1e9)
	if !p.Weekend || p.OfDay != 1 {
		t.Fatalf("period %+v", p)
	}
}
