// Command adloadgen drives a population-scale load test through the
// deployable serving path without ever materializing the population:
// traces are derived lazily from per-client seeds and scheduled by the
// event-driven streaming replay (sim.RunTransportStream), so a million
// simulated devices — with the trace generator's two-peak diurnal
// rhythm — pay only for their serving state (dedup window, cache, open
// impressions) while speaking real HTTP to the sharded server (or a
// multi-node cluster with -nodes). See README "Million-device runs"
// for the measured envelope.
//
// The report is per-period: device wake-ups, requests, wall-clock
// throughput and client-observed latency quantiles for each simulated
// period, followed by the peak-hour tail, the ledger line, and (with
// -energy) the per-device radio cost per day.
//
// Examples:
//
//	adloadgen                           # 1M devices, 1 day, 6h periods
//	adloadgen -users 100000 -shards 2   # smaller sweep
//	adloadgen -nodes 3 -users 500000    # through the cluster router
//	adloadgen -target http://127.0.0.1:8480 -users 100000  # drive a live deployment
//	adloadgen -json > run.json          # machine-readable result
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adloadgen: ")

	var (
		users    = flag.Int("users", 1_000_000, "simulated device population")
		days     = flag.Int("days", 1, "trace span in days")
		warmup   = flag.Int("warmup", 0, "predictor warm-up days (excluded from metrics)")
		period   = flag.Duration("period", 6*time.Hour, "prefetch period")
		refresh  = flag.Duration("refresh", 5*time.Minute, "in-app ad slot refresh interval")
		sessions = flag.Float64("sessions", 1.5, "median app sessions per device per day")
		mode     = flag.String("mode", "naive", "delivery mode: ondemand | naive | predictive | oracle")
		shards   = flag.Int("shards", 4, "server shard count (single-process)")
		nodes    = flag.Int("nodes", 0, "cluster node count (0 = single process)")
		target   = flag.String("target", "", "base URL of an already-running server or router (e.g. http://127.0.0.1:8480); drives it instead of booting one in-process")
		workers  = flag.Int("workers", 0, "device worker goroutines (0 = GOMAXPROCS)")
		batched  = flag.Bool("batched", true, "use the coalesced batch wire")
		binary   = flag.Bool("binary", false, "use the binary batch codec (implies -batched)")
		energy   = flag.Bool("energy", true, "charge transfer bytes through per-device radios")
		lean     = flag.Bool("lean", true, "drop O(population) result fields")
		seed     = flag.Int64("seed", 1, "root random seed")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of the report")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig(m)
	cfg.TraceCfg.Users = *users
	cfg.TraceCfg.Days = *days
	cfg.TraceCfg.Seed = *seed
	cfg.TraceCfg.SessionsPerDayMedian = *sessions
	cfg.Seed = *seed
	cfg.WarmupDays = *warmup
	cfg.Core.Server.Period = *period
	cfg.RefreshInterval = *refresh
	o := sim.TransportOpts{
		Shards:      *shards,
		Nodes:       *nodes,
		Workers:     *workers,
		Batched:     *batched || *binary,
		BinaryBatch: *binary,
		Energy:      *energy,
		Lean:        *lean,
		TargetURL:   *target,
	}
	if *nodes > 0 {
		o.Shards = 0
	}
	if *target != "" {
		// The external deployment decides its own topology; the generator
		// only drives devices at it.
		o.Shards, o.Nodes = 0, 0
	}

	start := time.Now()
	res, err := sim.RunTransportStream(cfg, o)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report(res, wall)); err != nil {
			log.Fatal(err)
		}
		return
	}
	printReport(res, wall)
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "ondemand", "on-demand":
		return core.ModeOnDemand, nil
	case "naive", "naive-bulk":
		return core.ModeNaiveBulk, nil
	case "predictive":
		return core.ModePredictive, nil
	case "oracle":
		return core.ModeOracle, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want ondemand|naive|predictive|oracle)", s)
	}
}

// runReport is the machine-readable summary -json emits.
type runReport struct {
	Users        int                    `json:"users"`
	WallSeconds  float64                `json:"wall_seconds"`
	TotalOps     int64                  `json:"total_ops"`
	TotalWakeups int64                  `json:"total_wakeups"`
	OpsPerSec    float64                `json:"ops_per_sec"`
	PeakHour     int                    `json:"peak_hour"`
	PeakP99MS    float64                `json:"peak_p99_ms"`
	AdJPerUser   float64                `json:"ad_j_per_user_day"`
	AppJPerUser  float64                `json:"app_j_per_user_day"`
	HitRate      float64                `json:"hit_rate"`
	Ledger       string                 `json:"ledger"`
	Periods      []sim.StreamPeriodStat `json:"periods"`
}

func report(res *sim.Result, wall time.Duration) runReport {
	r := runReport{
		Users:       res.Users,
		WallSeconds: wall.Seconds(),
		Ledger:      sim.LedgerJSON(res.Ledger),
		HitRate:     res.Counters.HitRate(),
		AdJPerUser:  res.AdEnergyPerUserDay(),
		Periods:     res.StreamPeriods,
	}
	if res.Users > 0 && res.Days > 0 {
		r.AppJPerUser = res.AppEnergyJ / float64(res.Users) / float64(res.Days)
	}
	for _, p := range res.StreamPeriods {
		r.TotalOps += p.Ops
		r.TotalWakeups += p.Wakeups
		if p.P99NS/1e6 > r.PeakP99MS {
			r.PeakP99MS = p.P99NS / 1e6
			r.PeakHour = p.HourOfDay
		}
	}
	if wall > 0 {
		r.OpsPerSec = float64(r.TotalOps) / wall.Seconds()
	}
	return r
}

func printReport(res *sim.Result, wall time.Duration) {
	fmt.Printf("%d devices, %d measured day(s), %v wall\n\n", res.Users, res.Days, wall.Round(time.Second))
	fmt.Printf("%7s %5s %12s %12s %9s %10s %9s %9s %9s\n",
		"period", "hour", "wakeups", "ops", "wall", "ops/s", "p50 ms", "p95 ms", "p99 ms")
	for _, p := range res.StreamPeriods {
		fmt.Printf("%7d %5d %12d %12d %8.1fs %10.0f %9.2f %9.2f %9.2f\n",
			p.Index, p.HourOfDay, p.Wakeups, p.Ops,
			float64(p.WallNS)/1e9, p.OpsPerSec(),
			p.P50NS/1e6, p.P95NS/1e6, p.P99NS/1e6)
	}
	r := report(res, wall)
	fmt.Printf("\ntotal: %d ops, %d wake-ups, %.0f ops/s overall\n", r.TotalOps, r.TotalWakeups, r.OpsPerSec)
	fmt.Printf("peak-hour tail: p99 %.2f ms at hour %02d\n", r.PeakP99MS, r.PeakHour)
	if res.AdEnergyJ > 0 || res.AppEnergyJ > 0 {
		fmt.Printf("energy: %.2f J/device/day ads, %.2f J/device/day app\n", r.AdJPerUser, r.AppJPerUser)
	}
	fmt.Printf("serving: hit rate %.1f%%, %s\n", 100*r.HitRate, res.String())
	fmt.Printf("ledger: %s\n", r.Ledger)
}
