// Command adserverd runs the prefetching ad server as an HTTP service:
// auctions, admission control, overbooked replication, claims and
// billing behind the JSON protocol in internal/transport. Devices (see
// transport.Device, or examples/httpdemo) speak to it with bundle
// fetches, slot observations, display reports and on-demand requests —
// either one request per operation, or one POST /v1/batch envelope per
// wake-up (transport.WithBatching); -max-batch bounds the envelope.
//
// With -shards > 1 the client id space is hash-partitioned across that
// many independent ad-server shards, each behind its own lock, so the
// serving path scales with cores (campaign budgets are split evenly
// across shards, as a real deployment would).
//
// With -wal DIR the server is crash-safe: every mutating operation is
// appended to a write-ahead log in DIR before its response is
// acknowledged, a full-state snapshot truncates the log every
// -snapshot-every period-end rounds, and boot replays whatever the
// directory holds — a kill -9 at any instant loses nothing that was
// acked, and client retries ride the recovered idempotency window
// instead of double-executing (see internal/wal and DESIGN.md §5d).
//
// The serving handler instruments every endpoint into a metrics
// registry scraped at GET /v1/metrics (Prometheus text format). With
// -debug-addr set, a second listener — keep it off the public network —
// serves Go runtime profiling at /debug/pprof/, expvar at /debug/vars,
// and the same metrics exposition at /metrics.
//
// A multi-node cluster is N adserverd processes plus one more running
// the routing tier: with -route-nodes URL1,URL2,... the process serves
// no ads itself — it places each client onto one node by consistent
// hashing, proxies client traffic there, fans period rounds out to
// every node, and rides out node restarts (crashed nodes are probed on
// /v1/health and rejoined when they answer; see internal/cluster and
// README "Running a cluster"). Give each node a -node-id so the label
// shows up in its /v1/health reply and as the adserver_node_info gauge
// in /v1/metrics.
//
// Example:
//
//	adserverd -addr :8480 -clients 100 -period 4h -campaigns 40 -shards 4 -debug-addr 127.0.0.1:8481
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adserver"
	"repro/internal/auction"
	"repro/internal/cluster"
	"repro/internal/predict"
	"repro/internal/shard"
	"repro/internal/simclock"
	"repro/internal/tenant"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adserverd: ")

	var (
		addr      = flag.String("addr", ":8480", "listen address")
		clients   = flag.Int("clients", 100, "client id space (0..N-1)")
		period    = flag.Duration("period", 4*time.Hour, "prefetch period")
		campaigns = flag.Int("campaigns", 40, "synthetic campaign count")
		cpm       = flag.Float64("cpm", 1.0, "median campaign CPM in USD")
		reserve   = flag.Float64("reserve", 0.0002, "per-impression reserve price in USD")
		pctile    = flag.Float64("percentile", 0.9, "client forecast percentile")
		seed      = flag.Int64("seed", 1, "demand generation seed")
		shards    = flag.Int("shards", 1, "ad-server shards (clients hash-partitioned; one lock each)")
		maxBatch  = flag.Int("max-batch", transport.DefaultMaxBatchOps, "max sub-ops per /v1/batch envelope")
		statePath = flag.String("state", "", "predictor-state file: loaded at startup, saved on SIGINT/SIGTERM")
		walDir    = flag.String("wal", "", "durability directory (write-ahead log + snapshots); empty disables crash safety")
		snapEvery = flag.Int("snapshot-every", 6, "with -wal: full-state checkpoint every N period-end rounds (0 = log only, never truncated)")
		debugAddr = flag.String("debug-addr", "", "debug listener (pprof, expvar, metrics); empty disables, keep it private")
		nodeID    = flag.String("node-id", "", "this node's id in a cluster; surfaced in /v1/health and as the adserver_node_info gauge")
		routeNode = flag.String("route-nodes", "", "comma-separated node base URLs: run the cluster routing tier over them instead of serving ads")
		probeEach = flag.Duration("probe-every", 2*time.Second, "with -route-nodes: how often down nodes are probed for rejoin")
		adminTok  = flag.String("admin-token", "", "bearer token protecting /v1/admin (node migration endpoints; router membership endpoints); empty leaves admin open")
		impBase   = flag.Int64("imp-base", 0, "impression-id namespace floor for this node (give each elastic-cluster node a disjoint block, e.g. node i gets (i+1)<<40)")
		clNode    = flag.Int("cluster-node", 0, "with -cluster-size: this node's member index in the routing ring")
		clSize    = flag.Int("cluster-size", 0, "boot owning only the clients the routing ring places on member -cluster-node among this many members (a joiner passes the pre-join size and its new index, owning none); 0 owns the whole id space")
		tenantsFl = flag.String("tenants", "", "JSON file with the boot tenant table ([{id, lo, hi, rate_per_sec, burst, max_open_book}, ...]); empty serves the legacy single tenant")
	)
	flag.Parse()
	if *routeNode != "" {
		runRouter(*addr, *routeNode, *probeEach, *adminTok)
		return
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}

	demand := auction.DefaultDemand()
	demand.Campaigns = *campaigns
	demand.CPMMedianUSD = *cpm

	// The boot tenant table is parsed before demand generation: each
	// named tenant gets its own synthetic campaign namespace (ids offset
	// per tenant, tagged with the tenant), mirroring how a real
	// deployment scopes demand per publisher — without it, tenanted
	// clients would have no campaigns to buy.
	var tenantReg *tenant.Registry
	var tenantCfgs []tenant.Config
	if *tenantsFl != "" {
		data, err := os.ReadFile(*tenantsFl)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &tenantCfgs); err != nil {
			log.Fatalf("-tenants %s: %v", *tenantsFl, err)
		}
		if tenantReg, err = tenant.NewRegistry(1, tenantCfgs); err != nil {
			log.Fatalf("-tenants %s: %v", *tenantsFl, err)
		}
	}

	cfg := adserver.DefaultConfig()
	cfg.Period = *period
	// In an elastic cluster every node must boot owning exactly its ring
	// share — the membership control plane plans moves from what nodes
	// report owning, and overlapping boot partitions make every plan
	// refuse. A joiner (index >= pre-join size) correctly owns nothing.
	ids := make([]int, 0, *clients)
	if *clSize > 0 {
		members := make([]int, *clSize)
		for i := range members {
			members[i] = i
		}
		ring := cluster.NewRingOf(members, 0)
		for c := 0; c < *clients; c++ {
			if *clNode >= 0 && *clNode < *clSize && ring.Place(c) == *clNode {
				ids = append(ids, c)
			}
		}
	} else {
		for c := 0; c < *clients; c++ {
			ids = append(ids, c)
		}
	}
	// Every shard sees the same campaign set with 1/N of each budget:
	// the demand pool is split across shards, not duplicated.
	mkExchange := func(int) (*auction.Exchange, error) {
		cs := demand.Generate(simclock.NewRand(*seed))
		for ti, tc := range tenantCfgs {
			set := demand.Generate(simclock.NewRand(*seed + int64(ti) + 1))
			for i := range set {
				set[i].ID += auction.CampaignID((ti + 1) * demand.Campaigns)
				set[i].Tenant = tc.ID
			}
			cs = append(cs, set...)
		}
		for i := range cs {
			cs[i].BudgetUSD /= float64(*shards)
		}
		return auction.NewExchange(cs, *reserve)
	}
	pool, err := shard.New(*shards, cfg, ids, mkExchange, func(int) predict.Predictor {
		return predict.NewPercentileHistogram(*pctile)
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if *impBase > 0 {
		// Elastic clusters migrate client state between nodes; disjoint
		// id namespaces keep adopted impressions from colliding with
		// locally minted ones. Seeded before WAL recovery so replay mints
		// the same ids the live run did.
		for i := 0; i < pool.Shards(); i++ {
			pool.Shard(i).Exchange().SeedImpressionIDs(auction.ImpressionID(*impBase))
		}
	}

	if *statePath != "" {
		f, err := os.Open(*statePath)
		switch {
		case err == nil:
			loadErr := pool.LoadPredictors(f)
			f.Close()
			if loadErr != nil {
				log.Fatal(loadErr)
			}
			fmt.Printf("adserverd: restored predictor state from %s\n", *statePath)
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to restore.
		default:
			log.Fatal(err)
		}
	}

	// Timeouts bound every connection (a stalled mobile client must not
	// pin a handler goroutine forever); graceful Shutdown drains
	// in-flight requests on SIGINT/SIGTERM before predictor state is
	// persisted, so a deploy never truncates a half-served report.
	ss := transport.NewShardedServer(pool)
	ss.MaxBatchOps = *maxBatch
	ss.SetNodeID(*nodeID)
	ss.AdminToken = *adminTok

	// The boot tenant table must be installed before WAL recovery:
	// replayed config epochs stack on top of the same initial registry
	// the live run had, exactly like the shard layout must match.
	if tenantReg != nil {
		ss.SetTenants(tenantReg)
		fmt.Printf("adserverd: %d tenant(s) under admission control (epoch 1)\n", len(tenantCfgs))
	}

	// Durability: every mutating operation is logged before its response
	// is acknowledged, and boot recovers whatever the directory holds —
	// a kill -9 at any instant loses nothing that was acked.
	if *walDir != "" {
		l, err := wal.Open(*walDir, wal.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		ss.AttachWAL(l, *snapEvery)
		st, err := ss.Recover()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adserverd: recovered from %s (snapshot=%v, %d ops replayed)\n",
			*walDir, st.SnapshotRestored, st.Replayed)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      ss.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	// The debug listener is a separate server on purpose: profiling and
	// runtime internals never ride the public address, and an operator
	// can firewall the two independently. No timeouts — profile streams
	// (e.g. /debug/pprof/trace?seconds=60) are long-lived by design.
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/debug/vars", expvar.Handler())
		dbg.Handle("/metrics", ss.Registry().Handler())
		go func() {
			fmt.Printf("adserverd: debug listener (pprof, expvar, metrics) on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		sig := <-sigc
		fmt.Printf("adserverd: %v: draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(drained)
	}()

	if *clSize > 0 {
		fmt.Printf("adserverd: owns %d of %d clients (ring member %d of %d), %d campaigns, %d shard(s), period %v, listening on %s\n",
			len(ids), *clients, *clNode, *clSize, *campaigns, *shards, *period, *addr)
	} else {
		fmt.Printf("adserverd: %d clients, %d campaigns, %d shard(s), period %v, listening on %s\n",
			*clients, *campaigns, *shards, *period, *addr)
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained

	if *statePath != "" {
		// Atomic save: a crash mid-write must leave the previous state
		// file intact, never a torn one.
		if err := wal.WriteFileAtomic(*statePath, pool.SavePredictors); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adserverd: saved predictor state to %s\n", *statePath)
	}
}

// runRouter serves the cluster routing tier over the given node URLs:
// no local ad state, just placement, proxying, period fan-out, the
// background prober that rejoins restarted nodes, and the membership
// control plane under /v1/admin (add/drain/remove/plan — see README
// "Scaling the cluster live"). The router's own /v1/metrics exposes the
// cluster counters (forwards, failures, circuit opens, refusals,
// rejoins, migrations).
func runRouter(addr, nodeList string, probeEvery time.Duration, adminToken string) {
	urls := strings.Split(nodeList, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
		if urls[i] == "" {
			log.Fatalf("-route-nodes: empty URL at position %d", i)
		}
	}
	opts := []cluster.Option{}
	if adminToken != "" {
		opts = append(opts, cluster.WithAdminToken(adminToken))
	}
	rt, err := cluster.New(cluster.Membership{Nodes: urls}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	rt.StartProber(probeEvery)
	defer rt.Close()

	srv := &http.Server{
		Addr:         addr,
		Handler:      rt.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		sig := <-sigc
		fmt.Printf("adserverd: %v: draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(drained)
	}()
	fmt.Printf("adserverd: routing tier over %d node(s), listening on %s\n", len(urls), addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
}
