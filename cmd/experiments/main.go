// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	experiments -list
//	experiments -exp f7                 # the headline energy figure
//	experiments -exp all -scale medium
//	experiments -exp t1 -scale full     # paper-scale measurement study
//	experiments -exp f5 -csv            # machine-readable series
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp    = flag.String("exp", "all", `experiment id (e.g. "t1", "f7") or "all"`)
		scale  = flag.String("scale", "small", "run scale: small | medium | full")
		list   = flag.Bool("list", false, "list experiments and exit")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir = flag.String("o", "", "also write one CSV file per experiment into this directory")
		plot   = flag.Bool("plot", false, "also render the first numeric column as an ASCII bar chart")
	)
	flag.Parse()

	if *list {
		for _, id := range adprefetch.Experiments() {
			fmt.Printf("%-4s %s\n", id, adprefetch.DescribeExperiment(id))
		}
		return
	}

	var s adprefetch.Scale
	switch *scale {
	case "small":
		s = adprefetch.ScaleSmall()
	case "medium":
		s = adprefetch.ScaleMedium()
	case "full":
		s = adprefetch.ScaleFull()
	default:
		log.Fatalf("unknown scale %q (want small|medium|full)", *scale)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = adprefetch.Experiments()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := adprefetch.RunExperiment(id, s)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s, scale %s: %d users x %d days, %v)\n\n",
				id, *scale, s.Users, s.Days, time.Since(start).Round(time.Millisecond))
		}
		if *plot {
			if chart, ok := adprefetch.PlotTable(tbl, 48); ok {
				fmt.Println(chart)
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.csv", id, *scale))
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}
