// Command adsim runs one end-to-end simulation of the ad-prefetching
// system over a synthetic (or loaded) usage trace and prints the
// energy / SLA / revenue report.
//
// Examples:
//
//	adsim -mode predictive -users 300 -days 14 -period 4h
//	adsim -mode ondemand -users 300 -days 14          # status-quo baseline
//	adsim -mode predictive -trace traces.jsonl        # replay a real trace
//	adsim -compare -users 200 -days 10                # all four modes side by side
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adsim: ")

	var (
		mode      = flag.String("mode", "predictive", "delivery mode: ondemand | naive | predictive | oracle")
		users     = flag.Int("users", 200, "synthetic population size")
		days      = flag.Int("days", 10, "trace span in days")
		warmup    = flag.Int("warmup", 5, "predictor warm-up days (excluded from metrics)")
		period    = flag.Duration("period", 4*time.Hour, "prefetch period")
		pctile    = flag.Float64("percentile", 0.9, "percentile-histogram operating point")
		k         = flag.Int("k", 0, "fixed replication factor (0 = adaptive)")
		seed      = flag.Int64("seed", 1, "root random seed")
		radioName = flag.String("radio", "3g", "radio profile: 3g | lte | wifi")
		delivery  = flag.String("delivery", "scheduled", "bundle delivery: scheduled | piggyback")
		tracePath = flag.String("trace", "", "JSON-lines trace file to replay instead of synthesizing")
		compare   = flag.Bool("compare", false, "run all four modes and print a comparison table")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text (with -compare)")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	cfg := adprefetch.DefaultSimConfig(m)
	cfg.TraceCfg.Users = *users
	cfg.TraceCfg.Days = *days
	cfg.TraceCfg.Seed = *seed
	cfg.WarmupDays = *warmup
	cfg.Seed = *seed
	cfg.Core.Server.Period = *period
	cfg.Core.Percentile = *pctile
	if *k > 0 {
		cfg.Core.Server.Overbook.FixedReplicas = *k
	}
	switch *radioName {
	case "3g":
		cfg.Radio = adprefetch.Profile3G()
	case "lte":
		cfg.Radio = adprefetch.ProfileLTE()
	case "wifi":
		cfg.Radio = adprefetch.ProfileWiFi()
	default:
		log.Fatalf("unknown radio %q", *radioName)
	}
	switch *delivery {
	case "scheduled":
		cfg.Core.Delivery = adprefetch.DeliverScheduled
	case "piggyback":
		cfg.Core.Delivery = adprefetch.DeliverPiggyback
	default:
		log.Fatalf("unknown delivery %q", *delivery)
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		pop, err := adprefetch.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Population = pop
	}

	if *compare {
		modes := []adprefetch.Mode{
			adprefetch.ModeOnDemand, adprefetch.ModeNaiveBulk,
			adprefetch.ModePredictive, adprefetch.ModeOracle,
		}
		results, err := adprefetch.CompareModes(cfg, modes)
		if err != nil {
			log.Fatal(err)
		}
		tbl := adprefetch.CompareTable(fmt.Sprintf("mode comparison (%d users, %d days, period %v)",
			*users, *days, *period), results)
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.String())
		}
		return
	}

	res, err := adprefetch.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("  users %d, measured days %d, period %v\n", res.Users, res.Days, *period)
	fmt.Printf("  ad energy      %.1f J total (%.1f J/user/day)\n", res.AdEnergyJ, res.AdEnergyPerUserDay())
	fmt.Printf("  app energy     %.1f J total\n", res.AppEnergyJ)
	fmt.Printf("  slots          %d (%d cache hits, %d fallback fetches)\n",
		res.Counters.SlotsServed, res.Counters.CacheHits, res.Counters.OnDemandFetches)
	fmt.Printf("  sold           %d prefetch impressions, mean k %.2f\n", res.SoldTotal, res.MeanReplication())
	fmt.Printf("  billed         $%.2f (%d impressions)\n", res.Ledger.BilledUSD, res.Ledger.Billed)
	fmt.Printf("  SLA violations %d (%.3g%%)\n", res.Ledger.Violations, 100*res.Ledger.ViolationRate())
	fmt.Printf("  revenue loss   $%.4f (%.3g%% of billed, %d free shows)\n",
		res.Ledger.FreeUSD, 100*res.Ledger.RevenueLossFrac(), res.Ledger.FreeShows)
}

func parseMode(s string) (adprefetch.Mode, error) {
	switch s {
	case "ondemand", "on-demand":
		return adprefetch.ModeOnDemand, nil
	case "naive", "naive-bulk":
		return adprefetch.ModeNaiveBulk, nil
	case "predictive":
		return adprefetch.ModePredictive, nil
	case "oracle":
		return adprefetch.ModeOracle, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want ondemand|naive|predictive|oracle)", s)
	}
}
