// Command tracegen synthesizes a smartphone usage-trace population and
// writes it as JSON-lines (the format cmd/adsim -trace consumes), or
// prints its characterization.
//
// Examples:
//
//	tracegen -users 1738 -days 28 -o traces.jsonl
//	tracegen -users 300 -days 14 -stats          # print the F2 table only
//	tracegen -in traces.jsonl -stats             # characterize an existing file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		users      = flag.Int("users", 1738, "population size")
		days       = flag.Int("days", 28, "trace span in days")
		seed       = flag.Int64("seed", 1, "root random seed")
		regularity = flag.Float64("regularity", 0.7, "day-over-day self-similarity in [0,1]")
		out        = flag.String("o", "", "output file (default stdout)")
		in         = flag.String("in", "", "characterize this existing trace instead of generating")
		stats      = flag.Bool("stats", false, "print the characterization table instead of the trace")
		asCSV      = flag.Bool("csv", false, "write flat session CSV instead of JSON-lines")
	)
	flag.Parse()

	var pop *adprefetch.Population
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		p, err := adprefetch.ReadTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		pop = p
	} else {
		cfg := adprefetch.DefaultTraceConfig()
		cfg.Users = *users
		cfg.Days = *days
		cfg.Seed = *seed
		cfg.Regularity = *regularity
		p, err := adprefetch.GenerateTrace(cfg)
		if err != nil {
			log.Fatal(err)
		}
		pop = p
	}

	if *stats {
		tbl := adprefetch.CharacterizeTrace(pop, adprefetch.DefaultCatalog(), adprefetch.SlotRefreshDefault)
		fmt.Print(tbl.String())
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	write := adprefetch.WriteTrace
	if *asCSV {
		write = adprefetch.WriteTraceCSV
	}
	if err := write(w, pop); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d users, %d sessions, %d days\n",
		len(pop.Users), pop.TotalSessions(), pop.Days())
}
