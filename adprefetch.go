// Package adprefetch is the public API of the mobile-ad prefetching
// system: an end-to-end reproduction of "Prefetching Mobile Ads: Can
// Advertising Systems Afford It?" (Mohan, Nath, Riva — EuroSys 2013).
//
// The library contains everything the paper's evaluation needs, built
// from scratch on the standard library:
//
//   - a radio energy model (3G/LTE/WiFi RRC state machines with
//     tail-energy accounting) — package internal/radio;
//   - a synthetic smartphone-usage workload calibrated to published
//     trace statistics, with serialization for plugging in real traces —
//     internal/trace;
//   - client-side ad-slot predictors, including the paper's
//     conservative percentile-histogram model — internal/predict;
//   - an ad exchange with campaigns, budgets, targeting and
//     second-price auctions — internal/auction;
//   - the overbooking model: admission control and rank-aware replica
//     planning — internal/overbook;
//   - the ad server and client runtime — internal/adserver,
//     internal/client;
//   - the assembled system engine and the trace-driven simulator —
//     internal/core, internal/sim;
//   - and the experiment harness regenerating every table and figure —
//     internal/experiments.
//
// This package re-exports the surface a downstream user needs: generate
// or load a workload, assemble a system in one of the four delivery
// modes, run the simulation, and read the energy/SLA/revenue outcomes.
//
// Quick start:
//
//	cfg := adprefetch.DefaultSimConfig(adprefetch.ModePredictive)
//	cfg.TraceCfg.Users = 200
//	res, err := adprefetch.RunSimulation(cfg)
//	if err != nil { ... }
//	fmt.Println(res) // energy, hit rate, SLA violations, revenue loss
package adprefetch

import (
	"io"
	"time"

	"repro/internal/adserver"
	"repro/internal/auction"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Delivery architectures (see core.Mode).
const (
	ModeOnDemand   = core.ModeOnDemand   // status quo: fetch at display time
	ModeNaiveBulk  = core.ModeNaiveBulk  // fixed-K prefetch, no prediction
	ModePredictive = core.ModePredictive // the paper's system
	ModeOracle     = core.ModeOracle     // perfect-foresight upper bound
)

// Bundle delivery policies.
const (
	DeliverScheduled = core.DeliverScheduled // download at period boundary
	DeliverPiggyback = core.DeliverPiggyback // ride the next natural radio wake
)

// Core system types.
type (
	// Mode selects the delivery architecture.
	Mode = core.Mode
	// Delivery selects when prefetch bundles download.
	Delivery = core.Delivery
	// SystemConfig assembles the prefetching engine.
	SystemConfig = core.Config
	// System is the assembled engine (server + devices), for callers
	// driving events themselves rather than via the simulator.
	System = core.System

	// SimConfig parameterizes an end-to-end simulation run.
	SimConfig = sim.Config
	// SimResult is a run's energy/SLA/revenue outcome.
	SimResult = sim.Result
	// WiFiSchedule models mixed WiFi/cellular connectivity.
	WiFiSchedule = sim.WiFiSchedule

	// TraceConfig parameterizes the synthetic population generator.
	TraceConfig = trace.GenConfig
	// Population is a set of user traces.
	Population = trace.Population
	// User is one device's session trace.
	User = trace.User
	// Session is one foreground app session.
	Session = trace.Session
	// Catalog is the app catalog.
	Catalog = trace.Catalog
	// App describes one catalog entry.
	App = trace.App

	// RadioProfile holds one technology's power/timer constants.
	RadioProfile = radio.Profile

	// Campaign is an advertiser's standing order.
	Campaign = auction.Campaign
	// Exchange runs the second-price auctions.
	Exchange = auction.Exchange
	// Ledger aggregates billing/SLA outcomes.
	Ledger = auction.Ledger
	// DemandConfig synthesizes advertiser demand.
	DemandConfig = auction.DemandConfig

	// Predictor forecasts per-period ad-slot counts.
	Predictor = predict.Predictor
	// Estimate is a slot forecast.
	Estimate = predict.Estimate

	// EnergyConfig parameterizes the measurement study.
	EnergyConfig = energy.Config
	// EnergyReport is a per-app energy attribution.
	EnergyReport = energy.Report

	// Table is rendered experiment output (text and CSV).
	Table = metrics.Table

	// Time is an instant in virtual time (nanoseconds since the
	// simulation epoch), used by the event-driven System API.
	Time = simclock.Time
	// Period describes one prefetch window for the event-driven API.
	Period = predict.Period
	// SlotOutcome reports what one ad slot did.
	SlotOutcome = core.SlotOutcome
	// ScheduledDelivery is a bundle download charged at a period start.
	ScheduledDelivery = core.ScheduledDelivery
	// Category tags apps/campaigns for targeting.
	Category = trace.Category

	// Scale sizes an experiment run.
	Scale = experiments.Scale

	// TransportServer adapts the ad server to the HTTP protocol.
	TransportServer = transport.Server
	// TransportDevice is the phone-side HTTP runtime.
	TransportDevice = transport.Device
	// TransportCoordinator drives period rounds over HTTP.
	TransportCoordinator = transport.Coordinator
)

// Virtual-time units for the event-driven System API.
const (
	Second = simclock.Second
	Minute = simclock.Minute
	Hour   = simclock.Hour
	Day    = simclock.Day
)

// At converts a duration since the epoch into a virtual instant.
func At(d time.Duration) Time { return simclock.At(d) }

// PeriodOf computes the Period descriptor of instant t under the given
// prefetch window size.
func PeriodOf(t Time, window time.Duration) Period { return predict.PeriodOf(t, window) }

// Radio profiles with literature-calibrated constants.
func Profile3G() RadioProfile   { return radio.Profile3G() }
func ProfileLTE() RadioProfile  { return radio.ProfileLTE() }
func ProfileWiFi() RadioProfile { return radio.ProfileWiFi() }

// Profile3GWithFACH returns the 3G profile with the shared-channel
// (FACH) path enabled for transfers up to threshold bytes — the X5
// ablation model.
func Profile3GWithFACH(threshold int64) RadioProfile { return radio.Profile3GWithFACH(threshold) }

// DefaultTraceConfig returns the population generator configuration used
// by the evaluation (1,738 users, 28 days).
func DefaultTraceConfig() TraceConfig { return trace.DefaultGenConfig() }

// GenerateTrace synthesizes a population.
func GenerateTrace(cfg TraceConfig) (*Population, error) { return trace.Generate(cfg) }

// WriteTrace serializes a population as JSON-lines.
func WriteTrace(w io.Writer, p *Population) error { return trace.Write(w, p) }

// ReadTrace parses a population from the JSON-lines format, allowing
// real traces to substitute for the synthetic workload.
func ReadTrace(r io.Reader) (*Population, error) { return trace.Read(r) }

// WriteTraceCSV exports a population as a flat session CSV for external
// analysis tools.
func WriteTraceCSV(w io.Writer, p *Population) error { return trace.WriteCSV(w, p) }

// ReadTraceCSV parses the CSV produced by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Population, error) { return trace.ReadCSV(r) }

// CharacterizeTrace summarizes a population (sessions/day, session
// lengths, ad slots, day-over-day regularity) under the given ad refresh
// interval, rendered as the F2 table.
func CharacterizeTrace(p *Population, cat *Catalog, refresh time.Duration) *Table {
	return trace.Characterize(p, cat, refresh).Table()
}

// DefaultCatalog returns the 15-app "top free apps" catalog.
func DefaultCatalog() *Catalog { return trace.NewCatalog(trace.DefaultCatalog()) }

// NewCatalog wraps a custom app list.
func NewCatalog(apps []App) *Catalog { return trace.NewCatalog(apps) }

// DefaultSystemConfig returns the evaluation operating point for a mode.
func DefaultSystemConfig(mode Mode) SystemConfig { return core.DefaultConfig(mode) }

// NewSystem assembles the prefetching engine over an exchange and client
// set, for callers that drive slot/period events themselves (see the
// core package documentation). oracleSeries is required for ModeOracle.
func NewSystem(cfg SystemConfig, ex *Exchange, clientIDs []int,
	oracleSeries func(clientID int) []int,
	hints func(clientID int) []trace.Category) (*System, error) {
	return core.New(cfg, ex, clientIDs, oracleSeries, hints)
}

// NewTransportServer wraps an ad server for HTTP serving; mount
// .Handler() on any mux (see cmd/adserverd and examples/httpdemo).
func NewTransportServer(srv *adserver.Server) *TransportServer { return transport.NewServer(srv) }

// NewExchange creates an ad exchange over a campaign set with the given
// per-impression reserve price.
func NewExchange(campaigns []Campaign, reserveUSD float64) (*Exchange, error) {
	return auction.NewExchange(campaigns, reserveUSD)
}

// DefaultDemand returns a synthetic advertiser demand configuration.
func DefaultDemand() DemandConfig { return auction.DefaultDemand() }

// DefaultSimConfig returns the evaluation simulation configuration for a
// mode (a moderate subsample; raise TraceCfg.Users/Days for full scale).
func DefaultSimConfig(mode Mode) SimConfig { return sim.DefaultConfig(mode) }

// RunSimulation replays the workload against the assembled system and
// returns the measured outcome.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// CompareModes runs the same configuration under several modes; the
// first result is the savings baseline.
func CompareModes(base SimConfig, modes []Mode) ([]*SimResult, error) {
	return sim.Compare(base, modes)
}

// CompareTable renders mode-comparison results as a table.
func CompareTable(title string, results []*SimResult) *Table {
	return sim.CompareTable(title, results)
}

// DefaultEnergyConfig returns the measurement-study configuration
// (3G, 2 KB ads, 30 s refresh).
func DefaultEnergyConfig() EnergyConfig { return energy.DefaultConfig() }

// MeasureEnergy replays a population's traffic through the radio model
// and attributes energy per app and per cause (app traffic vs ads).
func MeasureEnergy(p *Population, cat *Catalog, cfg EnergyConfig) (*EnergyReport, error) {
	return energy.MeasurePopulation(p, cat, cfg)
}

// EnergyTable renders the measurement study as the paper's Table 1.
func EnergyTable(rep *EnergyReport) *Table { return energy.Table1(rep) }

// NewPercentileHistogram returns the paper's client predictor at
// percentile q (the evaluation uses 0.9).
func NewPercentileHistogram(q float64) Predictor { return predict.NewPercentileHistogram(q) }

// Experiment scales.
func ScaleSmall() Scale  { return experiments.Small() }
func ScaleMedium() Scale { return experiments.Medium() }
func ScaleFull() Scale   { return experiments.Full() }

// Experiments lists the table/figure IDs that can be regenerated.
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line summary.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, s Scale) (*Table, error) { return experiments.Run(id, s) }

// PlotTable renders a table's first numeric column as an ASCII bar
// chart (ok=false when the table has none).
func PlotTable(t *Table, width int) (string, bool) { return metrics.PlotFirstNumeric(t, width) }

// SlotRefreshDefault is the in-app ad rotation period the measurement
// study assumes (the Microsoft Ad SDK default).
const SlotRefreshDefault = 30 * time.Second
