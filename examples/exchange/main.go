// Exchange: the advertiser's view of prefetching.
//
// It builds an ad exchange with explicit campaigns, assembles the
// prefetching system over a handful of clients, and walks through two
// prefetch periods step by step: forecasts, admission, second-price
// sales, overbooked replication, displays, a racing duplicate, and the
// final ledger — showing exactly where "revenue loss" and "SLA
// violations" come from.
//
// Run with: go run ./examples/exchange
package main

import (
	"fmt"
	"log"
	"time"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)

	// Advertisers: two campaigns bidding $2 and $1 CPM.
	campaigns := []adprefetch.Campaign{
		{ID: 0, Name: "acme-spring-sale", BidCPM: 2.0, BudgetUSD: 50},
		{ID: 1, Name: "globex-brand", BidCPM: 1.0, BudgetUSD: 50},
	}
	ex, err := adprefetch.NewExchange(campaigns, 0.0002)
	if err != nil {
		log.Fatal(err)
	}

	// The system: 4 clients, predictive mode, 1-hour periods, fixed
	// 2x replication so the mechanics are visible.
	cfg := adprefetch.DefaultSystemConfig(adprefetch.ModePredictive)
	cfg.Server.Period = time.Hour
	cfg.Server.Overbook.FixedReplicas = 2
	cfg.Server.Overbook.AdmissionEpsilon = 0.45 // tiny population: keep admission > 0
	cfg.Server.SyncDelay = 30 * time.Minute     // slow sync so we can show a race
	sys, err := adprefetch.NewSystem(cfg, ex, []int{0, 1, 2, 3}, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Warm up the per-client predictors: each client historically shows
	// 2 ads in this hour-of-day.
	for day := 0; day < 5; day++ {
		p := adprefetch.Period{Index: day * 24, OfDay: 0}
		for c := 0; c < 4; c++ {
			sys.Server().ObserveSlot(c)
			sys.Server().ObserveSlot(c)
		}
		sys.EndPeriod(adprefetch.Time(day)*adprefetch.Day+adprefetch.Hour, p)
	}
	sys.SetSelling(true)

	// Period opens: the server sells predicted slots BEFORE they exist.
	now := 5 * adprefetch.Day
	p := adprefetch.Period{Index: 5 * 24, OfDay: 0}
	deliveries, stats := sys.StartPeriod(now, p)
	fmt.Printf("period opened at %v\n", now)
	fmt.Printf("  aggregate forecast %.0f slots -> admitted %d -> sold %d impressions (mean k %.1f)\n",
		stats.PredictedSlots, stats.Admitted, stats.Sold, stats.MeanK())
	for _, d := range deliveries {
		fmt.Printf("  client %d prefetches a bundle of %d ads\n", d.Client, d.Ads)
	}

	// Slots fire; ads are served from local caches with no network fetch.
	fmt.Println("\nslots fire:")
	for c := 0; c < 4; c++ {
		at := now + adprefetch.Time(c+1)*adprefetch.Minute
		out, err := sys.HandleSlot(at, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  client %d at %v: cacheHit=%v impression=%d\n", c, at, out.CacheHit, out.Impression)
	}

	// A racing duplicate: with slow sync, another client may display a
	// replica of an impression already claimed.
	fmt.Println("\nmore slots (replicas may race before cancellation propagates):")
	for c := 0; c < 4; c++ {
		at := now + adprefetch.Time(10+c)*adprefetch.Minute
		out, err := sys.HandleSlot(at, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  client %d: cacheHit=%v rescued=%v impression=%d\n", c, out.CacheHit, out.Rescued, out.Impression)
	}

	// Close the period and read the books.
	sys.EndPeriod(now+2*adprefetch.Hour, p)
	l := ex.Ledger()
	fmt.Println("\nledger:")
	fmt.Printf("  sold %d, billed %d ($%.4f)\n", l.Sold, l.Billed, l.BilledUSD)
	fmt.Printf("  free duplicate shows %d ($%.4f revenue loss, %.2f%% of billed)\n",
		l.FreeShows, l.FreeUSD, 100*l.RevenueLossFrac())
	fmt.Printf("  SLA violations %d (%.2f%% of sold)\n", l.Violations, 100*l.ViolationRate())
	for _, c := range campaigns {
		billed, committed, err := ex.CampaignSpend(c.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  campaign %-18s billed $%.4f (committed $%.4f)\n", c.Name, billed, committed)
	}
}
