// Predictors: train and compare client slot-prediction models.
//
// It generates a population, converts each user's sessions into
// per-period ad-slot series, trains every predictor on three weeks, and
// evaluates the fourth week online — reproducing the F3/F4 analysis that
// justifies the paper's conservative percentile model.
//
// Run with: go run ./examples/predictors
package main

import (
	"fmt"
	"log"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)

	fmt.Println("predictor comparison (F3): lower 'under' is better — every")
	fmt.Println("under-predicted slot forces an energy-expensive on-demand fetch.")
	fmt.Println()

	scale := adprefetch.ScaleSmall()
	scale.Users = 120
	scale.Days = 14
	tbl, err := adprefetch.RunExperiment("f3", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())

	fmt.Println()
	fmt.Println("percentile operating point (F4): raising the percentile trades")
	fmt.Println("cheap over-prediction for scarce under-prediction.")
	fmt.Println()
	tbl, err = adprefetch.RunExperiment("f4", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())

	// The same predictor, driven by hand through the public API.
	fmt.Println()
	fmt.Println("driving the percentile model directly:")
	p := adprefetch.NewPercentileHistogram(0.9)
	history := []int{4, 6, 5, 7, 5, 6, 5, 4, 0, 6, 7, 5, 6, 4, 5, 8, 6, 5, 7, 42} // one outlier day
	for i, slots := range history {
		p.Observe(adprefetch.Period{Index: i * 6, OfDay: 3}, slots)
	}
	est := p.Predict(adprefetch.Period{Index: len(history) * 6, OfDay: 3})
	fmt.Printf("  history %v\n  p90 forecast %.0f slots (mean %.1f, no-show prob %.2f)\n",
		history, est.Slots, est.Mean, est.NoShowProb)
	fmt.Println("  -> the p90 estimate covers busy days without chasing the outlier")
}
