// Quickstart: the 60-second tour of the adprefetch public API.
//
// It synthesizes a small population, runs the status-quo (on-demand)
// architecture and the paper's predictive prefetching system over the
// same traces, and prints the headline comparison: ad energy overhead,
// SLA violation rate, and revenue loss.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Configure a simulation: 100 synthetic users for 10 days, 3G
	// radio, 2 KB ads refreshed every 30 s — the paper's setting.
	cfg := adprefetch.DefaultSimConfig(adprefetch.ModeOnDemand)
	cfg.TraceCfg.Users = 100
	cfg.TraceCfg.Days = 10
	cfg.WarmupDays = 5

	// 2. Run the status-quo baseline: every ad slot downloads its ad at
	// display time, paying promotion + tail energy almost every time.
	baseline, err := adprefetch.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the paper's system over the same workload: clients predict
	// future ad slots, the server sells predicted inventory in the
	// exchange, replicates sold ads across clients (overbooking), and
	// bundles are prefetched once per 4-hour period.
	cfg.Core = adprefetch.DefaultSystemConfig(adprefetch.ModePredictive)
	prefetch, err := adprefetch.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	fmt.Println("status quo:  ", baseline)
	fmt.Println("prefetching: ", prefetch)
	saving := 1 - prefetch.AdEnergyPerUserDay()/baseline.AdEnergyPerUserDay()
	fmt.Printf("\nad energy reduced by %.0f%% — with %.2f%% SLA violations and %.2f%% revenue loss\n",
		100*saving, 100*prefetch.Ledger.ViolationRate(), 100*prefetch.Ledger.RevenueLossFrac())
}
