// Energysaver: the measurement-study scenario that motivates the paper.
//
// It reproduces the Table 1 experiment — how much of a free app's energy
// goes to downloading its ads — and then shows the tail-energy mechanism
// behind it: the per-ad cost of the same 2 KB download under different
// refresh intervals and radio technologies, versus a bulk prefetch.
//
// Run with: go run ./examples/energysaver
package main

import (
	"fmt"
	"log"

	adprefetch "repro"
)

func main() {
	log.SetFlags(0)

	// Part 1: the measurement study. Replay two weeks of a 150-user
	// population through the 3G radio model and attribute every joule.
	traceCfg := adprefetch.DefaultTraceConfig()
	traceCfg.Users = 150
	traceCfg.Days = 14
	pop, err := adprefetch.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	cat := adprefetch.DefaultCatalog()
	rep, err := adprefetch.MeasureEnergy(pop, cat, adprefetch.DefaultEnergyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(adprefetch.EnergyTable(rep).String())

	// Part 2: why. One 2 KB ad costs a fraction of a joule to transmit,
	// but the 3G radio stays in high-power states for ~17 s afterwards.
	fmt.Println("\nthe tail-energy mechanism (per 2 KB ad):")
	for _, p := range []adprefetch.RadioProfile{
		adprefetch.Profile3G(), adprefetch.ProfileLTE(), adprefetch.ProfileWiFi(),
	} {
		iso := p.IsolatedTransferEnergy(2048)
		xfer := p.ActivePower * p.TransferDuration(2048).Seconds()
		bulk10 := p.BatchedTransferEnergy(2048, 10) / 10
		fmt.Printf("  %-5s isolated %6.2f J   transmission only %5.3f J   bulk x10 %5.2f J/ad\n",
			p.Name, iso, xfer, bulk10)
	}

	// Part 3: what that means per user per day at a 30 s refresh.
	c := adprefetch.DefaultCatalog()
	char := adprefetch.CharacterizeTrace(pop, c, adprefetch.SlotRefreshDefault)
	fmt.Println()
	fmt.Print(char.String())

	fmt.Println("\ntakeaway: serving ads from a prefetched local cache amortizes one")
	fmt.Println("radio wake across a whole bundle instead of paying a tail per ad.")
}
