// HTTPDemo: the deployable split in action.
//
// It starts the ad service in-process on a loopback listener (the same
// handler cmd/adserverd serves), then drives three phone-side devices
// through two prefetch periods over real HTTP: bundle downloads, cache
// hits, a skipped bundle that exercises the rescue path, display
// reports, cancellation queries, and the final ledger.
//
// Run with: go run ./examples/httpdemo
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	adprefetch "repro"
	"repro/internal/adserver"
	"repro/internal/predict"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)

	// The ad service: two campaigns, 3 clients, 1-hour periods.
	ex, err := adprefetch.NewExchange([]adprefetch.Campaign{
		{ID: 0, Name: "acme", BidCPM: 2.0, BudgetUSD: 100},
		{ID: 1, Name: "globex", BidCPM: 1.0, BudgetUSD: 100},
	}, 0.0002)
	if err != nil {
		log.Fatal(err)
	}
	cfg := adserver.DefaultConfig()
	cfg.Period = time.Hour
	cfg.Overbook.FixedReplicas = 2
	cfg.Overbook.AdmissionEpsilon = 0.45
	srv, err := adserver.New(cfg, ex, []int{0, 1, 2}, func(int) predict.Predictor {
		return predict.NewPercentileHistogram(0.9)
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(transport.NewServer(srv).Handler())
	defer ts.Close()
	fmt.Println("ad service listening on", ts.URL)

	// Warm up the forecasts: 2 slots per client in this hour-of-day.
	coord := transport.NewCoordinator(ts.URL, transport.WithHTTPClient(ts.Client()))
	for day := 0; day < 5; day++ {
		for c := 0; c < 3; c++ {
			srv.ObserveSlot(c)
			srv.ObserveSlot(c)
		}
		at := adprefetch.Time(day)*adprefetch.Day + adprefetch.Hour
		if _, err := coord.EndPeriod(at, day*24, 0, false); err != nil {
			log.Fatal(err)
		}
	}

	devices := make([]*transport.Device, 3)
	for i := range devices {
		d, err := transport.NewDevice(i, 32, ts.URL, transport.WithHTTPClient(ts.Client()))
		if err != nil {
			log.Fatal(err)
		}
		devices[i] = d
	}

	now := 5 * adprefetch.Day
	reply, err := coord.StartPeriod(now, 5*24, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperiod opened: forecast %.0f slots, sold %d impressions across %d bundles (k=%d replicas total)\n",
		reply.PredictedSlots, reply.Sold, reply.BundledClients, reply.Replicas)

	// Devices 0 and 1 download their bundles; device 2 "sleeps" through
	// the boundary and will rely on the rescue path.
	for i := 0; i < 2; i++ {
		n, err := devices[i].FetchBundle(now + adprefetch.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %d downloaded a bundle of %d ads\n", i, n)
	}

	// Slots fire across the period.
	for i, d := range devices {
		at := now + adprefetch.Time(5+i)*adprefetch.Minute
		out, err := d.HandleSlot(at, []adprefetch.Category{"game"})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case out.CacheHit:
			fmt.Printf("device %d: served impression %d from cache (no radio wake)\n", i, out.Impression)
		case out.Rescued:
			fmt.Printf("device %d: cache miss -> rescued open impression %d (+%d top-up ads)\n",
				i, out.Impression, out.TopUpAds)
		default:
			fmt.Printf("device %d: cache miss -> fresh on-demand sale %d\n", i, out.Impression)
		}
	}

	if _, err := coord.EndPeriod(now+2*adprefetch.Hour, 5*24, 0, false); err != nil {
		log.Fatal(err)
	}
	l, err := coord.Ledger()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nledger: sold %d, billed %d ($%.4f), violations %d, free shows %d\n",
		l.Sold, l.Billed, l.BilledUSD, l.Violations, l.FreeShows)

}
